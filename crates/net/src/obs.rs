//! ψ-net's metric handles: one process-global bundle of pre-resolved
//! counters, gauges and histograms, indexed by opcode slot so the per-frame
//! hot paths (decode, reply flush, callback completion) never touch the
//! registry mutex — each site is one or two relaxed atomic ops on an `Arc`
//! resolved once at first use.

use crate::wire::{
    Reply, WireCoord, ERR_BUSY, ERR_EPOCH, ERR_HELLO_FIRST, ERR_MAGIC, ERR_MALFORMED, ERR_OPCODE,
    ERR_SHAPE, ERR_TOO_LARGE, ERR_VERSION, OP_APPLY_BATCH, OP_EPOCH_BOUNDS, OP_ERROR, OP_HELLO,
    OP_KNN, OP_RANGE_COUNT, OP_RANGE_LIST, OP_STATS, REPLY_BIT,
};
use psi_obs::{Counter, Gauge, Histogram};
use std::sync::{Arc, OnceLock};

/// Opcodes that get their own `op` label value; anything else (a hostile or
/// future opcode) lands in the trailing `"other"` slot.
const OPS: [(u8, &str); 8] = [
    (OP_HELLO, "hello"),
    (OP_KNN, "knn"),
    (OP_RANGE_COUNT, "range_count"),
    (OP_RANGE_LIST, "range_list"),
    (OP_EPOCH_BOUNDS, "epoch_bounds"),
    (OP_APPLY_BATCH, "apply_batch"),
    (OP_STATS, "stats"),
    (OP_ERROR, "error"),
];

/// Error codes that get their own `code` label value (slot 0 is `"other"`).
const CODES: [(u16, &str); 9] = [
    (ERR_MAGIC, "magic"),
    (ERR_VERSION, "version"),
    (ERR_SHAPE, "shape"),
    (ERR_OPCODE, "opcode"),
    (ERR_MALFORMED, "malformed"),
    (ERR_TOO_LARGE, "too_large"),
    (ERR_HELLO_FIRST, "hello_first"),
    (ERR_BUSY, "busy"),
    (ERR_EPOCH, "epoch"),
];

/// The label spelling of a wire opcode (`"knn"`, `"apply_batch"`, …) —
/// shared with the slow-query log so both name ops the same way.
pub(crate) fn op_name(op: u8) -> &'static str {
    OPS.get(op_slot(op))
        .map(|&(_, name)| name)
        .unwrap_or("other")
}

/// Map a wire opcode (request or reply direction) to its label slot.
fn op_slot(op: u8) -> usize {
    let base = if op == OP_ERROR { op } else { op & !REPLY_BIT };
    OPS.iter()
        .position(|&(o, _)| o == base)
        .unwrap_or(OPS.len())
}

fn code_slot(code: u16) -> usize {
    CODES
        .iter()
        .position(|&(c, _)| c == code)
        .map(|i| i + 1)
        .unwrap_or(0)
}

/// The socket front-end's pre-resolved metric handles.
pub(crate) struct NetObs {
    /// Connections currently open, both transports combined.
    pub open: Arc<Gauge>,
    frames_in: Vec<Arc<Counter>>,
    frames_out: Vec<Arc<Counter>>,
    latency: Vec<Arc<Histogram>>,
    errors: Vec<Arc<Counter>>,
}

impl NetObs {
    fn new() -> NetObs {
        let per_op = |name: &'static str, help: &'static str| -> Vec<Arc<Counter>> {
            OPS.iter()
                .map(|&(_, op)| psi_obs::counter(name, help, &[("op", op)]))
                .chain(std::iter::once(psi_obs::counter(
                    name,
                    help,
                    &[("op", "other")],
                )))
                .collect()
        };
        NetObs {
            open: psi_obs::gauge(
                "psi_net_open_connections",
                "client connections currently open across both transports",
                &[],
            ),
            frames_in: per_op(
                "psi_net_frames_in_total",
                "request frames decoded, by opcode",
            ),
            frames_out: per_op(
                "psi_net_frames_out_total",
                "reply frames encoded for sending, by opcode",
            ),
            latency: OPS
                .iter()
                .map(|&(_, op)| {
                    psi_obs::histogram(
                        "psi_net_request_latency_ns",
                        "request latency from decode to reply hand-off, by opcode",
                        &[("op", op)],
                    )
                })
                .chain(std::iter::once(psi_obs::histogram(
                    "psi_net_request_latency_ns",
                    "request latency from decode to reply hand-off, by opcode",
                    &[("op", "other")],
                )))
                .collect(),
            errors: std::iter::once(psi_obs::counter(
                "psi_net_errors_total",
                "typed error replies sent, by error code",
                &[("code", "other")],
            ))
            .chain(CODES.iter().map(|&(_, code)| {
                psi_obs::counter(
                    "psi_net_errors_total",
                    "typed error replies sent, by error code",
                    &[("code", code)],
                )
            }))
            .collect(),
        }
    }

    /// Count one decoded request frame.
    #[inline]
    pub fn frame_in(&self, op: u8) {
        self.frames_in[op_slot(op)].bump();
    }

    /// The decode-to-reply latency histogram for requests with opcode `op`.
    #[inline]
    pub fn request_latency(&self, op: u8) -> &Histogram {
        &self.latency[op_slot(op)]
    }

    /// Count one reply frame headed out: the outgoing frame by its actual
    /// wire opcode, plus the typed-error series when the reply is an error.
    /// `reply_to` is the request opcode being answered.
    #[inline]
    pub fn count_reply<T: WireCoord, const D: usize>(&self, reply_to: u8, reply: &Reply<T, D>) {
        let out_op = match reply {
            Reply::Error { code, .. } => {
                self.errors[code_slot(*code)].bump();
                OP_ERROR
            }
            _ => reply_to | REPLY_BIT,
        };
        self.frames_out[op_slot(out_op)].bump();
    }
}

static NET_OBS: OnceLock<NetObs> = OnceLock::new();

/// The process-global handle bundle (resolved from the registry on first
/// use; every later call is one initialised-`OnceLock` load).
pub(crate) fn net_obs() -> &'static NetObs {
    NET_OBS.get_or_init(NetObs::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_slots_cover_both_directions() {
        assert_eq!(op_slot(OP_KNN), op_slot(OP_KNN | REPLY_BIT));
        assert_eq!(OPS[op_slot(OP_ERROR)].1, "error");
        assert_eq!(op_slot(0x42), OPS.len(), "unknown opcodes map to 'other'");
    }

    #[test]
    fn reply_counting_tracks_errors_by_code() {
        let obs = net_obs();
        let busy_before = obs.errors[code_slot(ERR_BUSY)].get();
        let err_frames_before = obs.frames_out[op_slot(OP_ERROR)].get();
        obs.count_reply(
            OP_APPLY_BATCH,
            &Reply::<i64, 2>::Error {
                code: ERR_BUSY,
                message: "full".to_string(),
            },
        );
        assert_eq!(obs.errors[code_slot(ERR_BUSY)].get(), busy_before + 1);
        assert_eq!(
            obs.frames_out[op_slot(OP_ERROR)].get(),
            err_frames_before + 1
        );

        let knn_before = obs.frames_out[op_slot(OP_KNN)].get();
        obs.count_reply(OP_KNN, &Reply::<i64, 2>::Points(Vec::new()));
        assert_eq!(obs.frames_out[op_slot(OP_KNN)].get(), knn_before + 1);
    }
}
