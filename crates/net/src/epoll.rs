//! A minimal hand-rolled `epoll(7)` binding — just the four calls the
//! evented transport needs, declared `extern "C"` against the platform libc
//! the binary already links. Keeping the shim local (instead of pulling in a
//! bindings crate) keeps the workspace dependency-free and makes the unsafe
//! surface small enough to audit in one screen.
//!
//! Only the level-triggered subset is used: the event loop re-arms interest
//! explicitly per connection state machine, which keeps partial-read /
//! partial-write handling straightforward (no "drain until EAGAIN or lose
//! the edge" discipline required).

use std::io;
use std::os::unix::io::RawFd;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// `struct epoll_event`. On x86-64 the kernel ABI packs the struct (the u64
/// data field is 4-byte aligned); other architectures use natural layout.
#[derive(Copy, Clone)]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
pub struct EpollEvent {
    pub events: u32,
    /// Caller-owned cookie — the event loop stores its connection token here.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// An owned epoll instance; the fd closes on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a close-on-exec epoll instance.
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is the
        // only failure mode.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it out. DEL
        // ignores the event argument but a valid pointer is always passed
        // (required on kernels before 2.6.9, harmless after).
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest mask of a registered fd.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregister an fd (ignoring ENOENT races with close).
    pub fn delete(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Block until events arrive (or `timeout_ms` elapses; -1 = forever).
    /// Fills `events` and returns how many are valid. EINTR retries.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the out-pointer and capacity describe `events` exactly.
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` is a live epoll fd owned by this struct.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_round_trip() {
        let ep = Epoll::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        ep.add(b.as_raw_fd(), EPOLLIN, 42).unwrap();

        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        // Nothing readable yet: a zero-timeout wait returns no events.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        a.write_all(b"x").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (got_events, got_data) = (events[0].events, events[0].data);
        assert_ne!(got_events & EPOLLIN, 0);
        assert_eq!(got_data, 42);

        // Re-arm for writability: a fresh socketpair is instantly writable.
        ep.modify(b.as_raw_fd(), EPOLLOUT, 7).unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (got_events, got_data) = (events[0].events, events[0].data);
        assert_ne!(got_events & EPOLLOUT, 0);
        assert_eq!(got_data, 7);

        ep.delete(b.as_raw_fd());
        a.write_all(b"y").unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }
}
