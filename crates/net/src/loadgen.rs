//! Connection-scale load generation: a multiplexed fan-out driver.
//!
//! `psi_server`'s closed-loop generator dedicates one OS thread per client,
//! which tops out around the high hundreds of connections. Serving-scale
//! numbers need 1 000–10 000 concurrent connections, so this driver
//! multiplexes instead: `workers` threads each own `connections / workers`
//! protocol connections, and every **round** sends one request on each owned
//! connection, then collects each connection's reply. Every connection
//! therefore runs its own closed loop (exactly one request in flight), and
//! the server sees the full connection count concurrently — the coalescer's
//! flush window at 10 000 connections is what the benchmark exists to
//! measure.
//!
//! The op sequence on connection `c` is a pure function of `(c, round)`, so
//! an in-process [`replay_checksum`] can re-issue the identical sequence
//! against a [`psi_server::QueryClient`] and reproduce the combined answer
//! checksum bit-for-bit. Per-connection checksums fold FNV-1a over reply
//! payloads; the combined checksum adds them with wrapping arithmetic, so
//! it is independent of reply interleaving across connections.

use crate::client::WireClient;
use crate::wire::{Reply, Request, WireCoord};
use psi_geometry::{Point, Rect};
use psi_server::{QueryClient, ServeCoord};
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::Instant;

pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fold one reply into a running FNV-1a hash, over the wire encoding of its
/// payload (coordinates little-endian, counts as u64) — the representation
/// both the socket side and the in-process replay share exactly.
pub fn checksum_reply<T: WireCoord, const D: usize>(h: u64, reply: &Reply<T, D>) -> u64 {
    match reply {
        Reply::Points(pts) => {
            let mut h = fnv(h, &(pts.len() as u64).to_le_bytes());
            for p in pts {
                for c in p.coords {
                    h = fnv(h, &c.to_wire());
                }
            }
            h
        }
        Reply::Count(c) => fnv(h, &c.to_le_bytes()),
        _ => h,
    }
}

/// The deterministic op for connection `c`, round `i` — the same
/// kNN/kNN/count/list rotation `psi_server::loadgen` uses, so socket and
/// in-process runs exercise identical query mixes.
enum OpChoice {
    Knn(usize),
    Count(usize),
    List(usize),
}

fn op_for(c: usize, i: usize, n_queries: usize, n_rects: usize) -> OpChoice {
    let pick = c + i * 31;
    match i % 4 {
        0 | 1 => OpChoice::Knn(pick % n_queries),
        2 => OpChoice::Count(pick % n_rects),
        _ => OpChoice::List(pick % n_rects),
    }
}

/// Shape of one fan-out run.
#[derive(Clone, Debug)]
pub struct FanoutSpec {
    /// Concurrent protocol connections.
    pub connections: usize,
    /// Driver threads multiplexing them.
    pub workers: usize,
    /// Requests per connection.
    pub rounds: usize,
    /// Neighbours per kNN query.
    pub k: usize,
}

/// Measured outcome of a fan-out run.
#[derive(Clone, Debug)]
pub struct FanoutOutcome {
    /// Connections actually driven.
    pub connections: usize,
    /// Total requests answered.
    pub ops: usize,
    /// Wall-clock seconds from all-connected to all-answered.
    pub elapsed_secs: f64,
    /// Requests per second, all connections combined.
    pub throughput_qps: f64,
    /// Median per-request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-request latency, milliseconds.
    pub p99_ms: f64,
    /// Order-independent FNV checksum over every reply payload.
    pub checksum: u64,
}

/// Run the fan-out loop against a listening ψ-net server. Connection
/// establishment happens before timing starts (a barrier holds every worker
/// until all connections are up); any connect or I/O failure aborts the run
/// with an error rather than skewing the numbers.
pub fn fanout<T: WireCoord, const D: usize>(
    addr: SocketAddr,
    queries: &[Point<T, D>],
    rects: &[Rect<T, D>],
    spec: &FanoutSpec,
) -> Result<FanoutOutcome, String> {
    if queries.is_empty() || rects.is_empty() {
        return Err("fanout needs non-empty query and rect pools".to_string());
    }
    if spec.connections == 0 || spec.rounds == 0 {
        return Err("fanout needs at least one connection and one round".to_string());
    }
    let workers = spec.workers.clamp(1, spec.connections);
    // One shared latency histogram per run (wait-free record; percentiles
    // are bucket quantiles from the same machinery the live metrics use).
    let hist = Arc::new(psi_obs::Histogram::new());
    // Workers + the measuring thread: timing starts only once every
    // connection is established.
    let start_gate = Arc::new(Barrier::new(workers + 1));
    let threads: Vec<_> = (0..workers)
        .map(|w| {
            // Worker w owns the contiguous connection-index slice [lo, hi).
            let lo = spec.connections * w / workers;
            let hi = spec.connections * (w + 1) / workers;
            let queries = queries.to_vec();
            let rects = rects.to_vec();
            let spec = spec.clone();
            let start_gate = Arc::clone(&start_gate);
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || -> Result<u64, String> {
                let connected = (|| -> Result<Vec<WireClient<T, D>>, String> {
                    let mut conns: Vec<WireClient<T, D>> = Vec::with_capacity(hi - lo);
                    for c in lo..hi {
                        conns.push(
                            WireClient::connect(addr)
                                .map_err(|e| format!("connect conn {c}: {e}"))?,
                        );
                    }
                    Ok(conns)
                })();
                // Every worker reaches the barrier even on connect failure,
                // or the measuring thread would deadlock waiting for it.
                start_gate.wait();
                let mut conns = connected?;
                let mut sums: Vec<u64> = vec![FNV_OFFSET; hi - lo];
                let mut sent_at: Vec<Instant> = Vec::with_capacity(hi - lo);
                for i in 0..spec.rounds {
                    sent_at.clear();
                    for (j, conn) in conns.iter_mut().enumerate() {
                        let req = match op_for(lo + j, i, queries.len(), rects.len()) {
                            OpChoice::Knn(q) => Request::Knn {
                                q: queries[q],
                                k: spec.k as u32,
                                at: None,
                            },
                            OpChoice::Count(r) => Request::RangeCount {
                                rect: rects[r],
                                at: None,
                            },
                            OpChoice::List(r) => Request::RangeList {
                                rect: rects[r],
                                at: None,
                            },
                        };
                        sent_at.push(Instant::now());
                        conn.send(&req).map_err(|e| format!("send: {e}"))?;
                    }
                    for (j, conn) in conns.iter_mut().enumerate() {
                        let (_, reply) = conn.recv().map_err(|e| format!("recv: {e}"))?;
                        hist.record_duration(sent_at[j].elapsed());
                        if let Reply::Error { code, message } = &reply {
                            return Err(format!("server error {code}: {message}"));
                        }
                        sums[j] = checksum_reply(sums[j], &reply);
                    }
                }
                let combined = sums.into_iter().fold(0u64, u64::wrapping_add);
                Ok(combined)
            })
        })
        .collect();

    start_gate.wait();
    let started = Instant::now();
    let mut checksum = 0u64;
    for t in threads {
        let sum = t
            .join()
            .map_err(|_| "a fanout worker panicked".to_string())??;
        checksum = checksum.wrapping_add(sum);
    }
    let elapsed = started.elapsed().as_secs_f64();

    let snap = hist.snapshot();
    Ok(FanoutOutcome {
        connections: spec.connections,
        ops: snap.count() as usize,
        elapsed_secs: elapsed,
        throughput_qps: snap.count() as f64 / elapsed.max(1e-9),
        p50_ms: snap.quantile_ms(0.5),
        p99_ms: snap.quantile_ms(0.99),
        checksum,
    })
}

/// Re-issue the exact op sequences a [`fanout`] run sends — every
/// connection, every round — through an in-process [`QueryClient`] and
/// return the combined checksum. On a quiesced server this must equal the
/// socket run's [`FanoutOutcome::checksum`] bit-for-bit; a mismatch means
/// the wire path corrupted, dropped or mis-routed an answer.
pub fn replay_checksum<T: WireCoord + ServeCoord, const D: usize>(
    client: &mut dyn QueryClient<T, D>,
    queries: &[Point<T, D>],
    rects: &[Rect<T, D>],
    spec: &FanoutSpec,
) -> u64 {
    let mut combined = 0u64;
    for c in 0..spec.connections {
        let mut h = FNV_OFFSET;
        for i in 0..spec.rounds {
            let reply: Reply<T, D> = match op_for(c, i, queries.len(), rects.len()) {
                OpChoice::Knn(q) => Reply::Points(client.knn(&queries[q], spec.k)),
                OpChoice::Count(r) => Reply::Count(client.range_count(&rects[r]) as u64),
                OpChoice::List(r) => Reply::Points(client.range_list(&rects[r])),
            };
            h = checksum_reply(h, &reply);
        }
        combined = combined.wrapping_add(h);
    }
    combined
}
