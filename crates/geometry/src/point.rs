//! Points in `D`-dimensional Euclidean space.

use crate::coord::Coord;

/// A point in `R^D` with coordinates of type `T`.
///
/// Points are `Copy` and laid out as a plain `[T; D]`, so slices of points are
/// contiguous and cache-friendly — the sieving and sorting passes of the
/// P-Orth tree and SPaC-tree move points by value exactly like the C++
/// implementation moves its POD point structs.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Point<T: Coord, const D: usize> {
    /// Raw coordinates.
    pub coords: [T; D],
}

impl<T: Coord, const D: usize> Point<T, D> {
    /// Construct a point from its coordinate array.
    #[inline(always)]
    pub fn new(coords: [T; D]) -> Self {
        Point { coords }
    }

    /// The origin (all coordinates zero).
    #[inline(always)]
    pub fn origin() -> Self {
        Point {
            coords: [T::ZERO; D],
        }
    }

    /// Coordinate along dimension `d`.
    #[inline(always)]
    pub fn get(&self, d: usize) -> T {
        self.coords[d]
    }

    /// Squared Euclidean distance to another point, computed exactly
    /// (in `i128` for integer coordinates).
    #[inline(always)]
    pub fn dist_sq(&self, other: &Self) -> T::Dist {
        let mut acc = T::DIST_ZERO;
        for d in 0..D {
            acc = T::dist_add(acc, self.coords[d].diff_sq(other.coords[d]));
        }
        acc
    }

    /// Lexicographic comparison over coordinates — used as a canonical total
    /// order when an index needs to deduplicate or diff point sets.
    pub fn lex_cmp(&self, other: &Self) -> std::cmp::Ordering {
        for d in 0..D {
            let c = self.coords[d].total_cmp(&other.coords[d]);
            if c != std::cmp::Ordering::Equal {
                return c;
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl<T: Coord, const D: usize> Eq for Point<T, D> {}

impl<T: Coord, const D: usize> PartialOrd for Point<T, D> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Coord, const D: usize> Ord for Point<T, D> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.lex_cmp(other)
    }
}

impl<T: Coord, const D: usize> std::hash::Hash for Point<T, D>
where
    T: std::hash::Hash,
{
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.coords.hash(state);
    }
}

impl<T: Coord, const D: usize> From<[T; D]> for Point<T, D> {
    fn from(coords: [T; D]) -> Self {
        Point { coords }
    }
}

impl<T: Coord, const D: usize> Default for Point<T, D> {
    fn default() -> Self {
        Self::origin()
    }
}

#[cfg(test)]
mod tests {
    use crate::{PointF, PointI};

    #[test]
    fn dist_sq_2d() {
        let a = PointI::<2>::new([0, 0]);
        let b = PointI::<2>::new([3, 4]);
        assert_eq!(a.dist_sq(&b), 25);
        assert_eq!(b.dist_sq(&a), 25);
        assert_eq!(a.dist_sq(&a), 0);
    }

    #[test]
    fn dist_sq_3d() {
        let a = PointI::<3>::new([1, 2, 3]);
        let b = PointI::<3>::new([4, 6, 3]);
        assert_eq!(a.dist_sq(&b), 9 + 16);
    }

    #[test]
    fn dist_sq_no_overflow_at_paper_extents() {
        let a = PointI::<3>::new([0, 0, 0]);
        let b = PointI::<3>::new([1_000_000_000, 1_000_000_000, 1_000_000_000]);
        assert_eq!(a.dist_sq(&b), 3_000_000_000_000_000_000i128);
    }

    #[test]
    fn float_points() {
        let a = PointF::<2>::new([0.5, 0.5]);
        let b = PointF::<2>::new([1.5, 2.5]);
        assert!((a.dist_sq(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn lex_order_is_total_and_consistent() {
        let mut pts = vec![
            PointI::<2>::new([2, 1]),
            PointI::<2>::new([1, 5]),
            PointI::<2>::new([1, 2]),
            PointI::<2>::new([2, 0]),
        ];
        pts.sort();
        assert_eq!(
            pts,
            vec![
                PointI::<2>::new([1, 2]),
                PointI::<2>::new([1, 5]),
                PointI::<2>::new([2, 0]),
                PointI::<2>::new([2, 1]),
            ]
        );
    }

    #[test]
    fn default_is_origin() {
        assert_eq!(PointI::<3>::default(), PointI::<3>::new([0, 0, 0]));
    }
}
