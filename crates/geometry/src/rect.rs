//! Axis-aligned boxes ("bounding boxes" / "bounding volumes").
//!
//! Every index in the paper augments tree nodes with the smallest enclosing
//! axis-aligned region of the points in the subtree (Fig. 1 marks these in
//! blue). Queries prune subtrees by comparing the query ball or query box
//! against these rectangles; the predicates needed for that live here.

use crate::coord::Coord;
use crate::point::Point;

/// A closed axis-aligned box `[lo, hi]` in `R^D`.
///
/// Both corners are inclusive, matching how the paper's range queries are
/// defined (a point on the box boundary is inside the range). The "empty"
/// rectangle is represented with `lo > hi` in every dimension and is the
/// identity of [`Rect::merged`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Rect<T: Coord, const D: usize> {
    /// Lower-left corner (coordinate-wise minimum).
    pub lo: Point<T, D>,
    /// Upper-right corner (coordinate-wise maximum).
    pub hi: Point<T, D>,
}

impl<T: Coord, const D: usize> Rect<T, D> {
    /// Box from explicit corners. Corners are normalised so that
    /// `lo[d] <= hi[d]` in every dimension.
    pub fn new(a: Point<T, D>, b: Point<T, D>) -> Self {
        let mut lo = a;
        let mut hi = b;
        for d in 0..D {
            if lo.coords[d].total_cmp(&hi.coords[d]) == std::cmp::Ordering::Greater {
                std::mem::swap(&mut lo.coords[d], &mut hi.coords[d]);
            }
        }
        Rect { lo, hi }
    }

    /// Box from corners that are already ordered; no normalisation.
    #[inline(always)]
    pub fn from_corners(lo: Point<T, D>, hi: Point<T, D>) -> Self {
        Rect { lo, hi }
    }

    /// The empty box: the identity element of [`Rect::merged`], containing no point.
    pub fn empty() -> Self {
        Rect {
            lo: Point::new([T::MAX_VALUE; D]),
            hi: Point::new([T::MIN_VALUE; D]),
        }
    }

    /// A degenerate box containing exactly one point.
    #[inline(always)]
    pub fn singleton(p: Point<T, D>) -> Self {
        Rect { lo: p, hi: p }
    }

    /// Smallest box enclosing a set of points; [`Rect::empty`] for an empty slice.
    pub fn bounding(points: &[Point<T, D>]) -> Self {
        let mut r = Self::empty();
        for p in points {
            r.expand(p);
        }
        r
    }

    /// `true` iff this is the empty box (no point is contained).
    pub fn is_empty(&self) -> bool {
        for d in 0..D {
            if self.lo.coords[d].total_cmp(&self.hi.coords[d]) == std::cmp::Ordering::Greater {
                return true;
            }
        }
        false
    }

    /// Grow the box (in place) to include `p`.
    #[inline]
    pub fn expand(&mut self, p: &Point<T, D>) {
        for d in 0..D {
            if p.coords[d].total_cmp(&self.lo.coords[d]) == std::cmp::Ordering::Less {
                self.lo.coords[d] = p.coords[d];
            }
            if p.coords[d].total_cmp(&self.hi.coords[d]) == std::cmp::Ordering::Greater {
                self.hi.coords[d] = p.coords[d];
            }
        }
    }

    /// Smallest box containing both `self` and `other`.
    #[inline]
    pub fn merged(&self, other: &Self) -> Self {
        let mut r = *self;
        for d in 0..D {
            if other.lo.coords[d].total_cmp(&r.lo.coords[d]) == std::cmp::Ordering::Less {
                r.lo.coords[d] = other.lo.coords[d];
            }
            if other.hi.coords[d].total_cmp(&r.hi.coords[d]) == std::cmp::Ordering::Greater {
                r.hi.coords[d] = other.hi.coords[d];
            }
        }
        r
    }

    /// `true` iff the point lies inside the (closed) box.
    #[inline(always)]
    pub fn contains(&self, p: &Point<T, D>) -> bool {
        for d in 0..D {
            let c = p.coords[d];
            if c.total_cmp(&self.lo.coords[d]) == std::cmp::Ordering::Less
                || c.total_cmp(&self.hi.coords[d]) == std::cmp::Ordering::Greater
            {
                return false;
            }
        }
        true
    }

    /// `true` iff `other` is entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Self) -> bool {
        if other.is_empty() {
            return true;
        }
        self.contains(&other.lo) && self.contains(&other.hi)
    }

    /// `true` iff the two (closed) boxes share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        for d in 0..D {
            if self.hi.coords[d].total_cmp(&other.lo.coords[d]) == std::cmp::Ordering::Less
                || other.hi.coords[d].total_cmp(&self.lo.coords[d]) == std::cmp::Ordering::Less
            {
                return false;
            }
        }
        true
    }

    /// Squared distance from a point to the box (0 if the point is inside).
    ///
    /// This is the pruning primitive of every kNN search in the paper: a
    /// subtree whose bounding box is farther than the current k-th neighbour
    /// can be skipped.
    #[inline]
    pub fn dist_sq_to_point(&self, p: &Point<T, D>) -> T::Dist {
        let mut acc = T::DIST_ZERO;
        for d in 0..D {
            let c = p.coords[d];
            let lo = self.lo.coords[d];
            let hi = self.hi.coords[d];
            if c.total_cmp(&lo) == std::cmp::Ordering::Less {
                acc = T::dist_add(acc, c.diff_sq(lo));
            } else if c.total_cmp(&hi) == std::cmp::Ordering::Greater {
                acc = T::dist_add(acc, c.diff_sq(hi));
            }
        }
        acc
    }

    /// Centre of the box along dimension `d` (the spatial-median splitter of
    /// an Orth-tree node).
    #[inline(always)]
    pub fn midpoint(&self, d: usize) -> T {
        self.lo.coords[d].mid_floor(self.hi.coords[d])
    }

    /// Side length (extent) along dimension `d`, as `f64`, for reporting.
    pub fn extent(&self, d: usize) -> f64 {
        self.hi.coords[d].to_f64() - self.lo.coords[d].to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PointI, RectI};

    fn r(lo: [i64; 2], hi: [i64; 2]) -> RectI<2> {
        Rect::from_corners(Point::new(lo), Point::new(hi))
    }

    #[test]
    fn empty_box_properties() {
        let e = RectI::<2>::empty();
        assert!(e.is_empty());
        assert!(!e.contains(&Point::new([0, 0])));
        assert!(!e.intersects(&r([0, 0], [10, 10])));
        // merging with empty is identity
        let a = r([1, 2], [3, 4]);
        assert_eq!(e.merged(&a), a);
        assert_eq!(a.merged(&e), a);
    }

    #[test]
    fn bounding_of_points() {
        let pts = vec![
            PointI::<2>::new([3, 7]),
            PointI::<2>::new([-1, 2]),
            PointI::<2>::new([5, 5]),
        ];
        let b = Rect::bounding(&pts);
        assert_eq!(b, r([-1, 2], [5, 7]));
        for p in &pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn bounding_of_empty_slice_is_empty() {
        let b: RectI<2> = Rect::bounding(&[]);
        assert!(b.is_empty());
    }

    #[test]
    fn contains_is_closed() {
        let b = r([0, 0], [10, 10]);
        assert!(b.contains(&Point::new([0, 0])));
        assert!(b.contains(&Point::new([10, 10])));
        assert!(b.contains(&Point::new([5, 10])));
        assert!(!b.contains(&Point::new([11, 5])));
        assert!(!b.contains(&Point::new([5, -1])));
    }

    #[test]
    fn intersects_cases() {
        let a = r([0, 0], [10, 10]);
        assert!(a.intersects(&r([5, 5], [15, 15])));
        assert!(a.intersects(&r([10, 10], [20, 20]))); // touching corners count
        assert!(!a.intersects(&r([11, 0], [20, 10])));
        assert!(a.intersects(&r([2, 2], [3, 3]))); // containment
        assert!(r([2, 2], [3, 3]).intersects(&a));
    }

    #[test]
    fn contains_rect_cases() {
        let a = r([0, 0], [10, 10]);
        assert!(a.contains_rect(&r([2, 2], [8, 8])));
        assert!(a.contains_rect(&a));
        assert!(!a.contains_rect(&r([2, 2], [11, 8])));
        assert!(a.contains_rect(&RectI::<2>::empty()));
    }

    #[test]
    fn dist_sq_to_point() {
        let b = r([0, 0], [10, 10]);
        assert_eq!(b.dist_sq_to_point(&Point::new([5, 5])), 0);
        assert_eq!(b.dist_sq_to_point(&Point::new([13, 14])), 9 + 16);
        assert_eq!(b.dist_sq_to_point(&Point::new([-3, 5])), 9);
        assert_eq!(b.dist_sq_to_point(&Point::new([10, 10])), 0);
    }

    #[test]
    fn midpoint_splitter() {
        let b = r([0, 10], [10, 20]);
        assert_eq!(b.midpoint(0), 5);
        assert_eq!(b.midpoint(1), 15);
    }

    #[test]
    fn new_normalises_corners() {
        let b = Rect::new(PointI::<2>::new([10, 0]), PointI::<2>::new([0, 10]));
        assert_eq!(b, r([0, 0], [10, 10]));
    }

    #[test]
    fn expand_grows_monotonically() {
        let mut b = RectI::<2>::empty();
        b.expand(&Point::new([5, 5]));
        assert_eq!(b, r([5, 5], [5, 5]));
        b.expand(&Point::new([3, 9]));
        assert_eq!(b, r([3, 5], [5, 9]));
    }
}
