//! Geometry kernel for Ψ-Lib-rs.
//!
//! Provides the basic spatial types shared by every index in the workspace:
//!
//! * [`Point`] — a point in `D`-dimensional Euclidean space with a generic
//!   coordinate type (64-bit integers for the paper's workloads, `f64` for the
//!   SFC-free P-Orth tree which has no integer-coordinate restriction),
//! * [`Rect`] — an axis-aligned bounding box (the "bounding box"/"bounding
//!   volume" every spatial index in the paper augments its nodes with),
//! * distance computations with exact integer arithmetic (no precision loss
//!   for coordinates up to the paper's `[0, 10^9]` range),
//! * box/box and box/point predicates used for query-time pruning.
//!
//! The paper studies `D = 2` and `D = 3`; all types here are const-generic over
//! `D` and work for any `D >= 1`.

pub mod coord;
pub mod knn;
pub mod leaf;
pub mod point;
pub mod rect;
pub mod wirecoord;

pub use coord::Coord;
pub use knn::{brute_force_knn, KnnHeap};
pub use leaf::LeafSoA;
pub use point::Point;
pub use rect::Rect;
pub use wirecoord::WireCoord;

/// Convenience alias: integer-coordinate point, the representation used by all
/// SFC-based indexes in the paper (coordinates are 64-bit integers in `[0, 10^9]`).
pub type PointI<const D: usize> = Point<i64, D>;
/// Convenience alias: integer-coordinate axis-aligned box.
pub type RectI<const D: usize> = Rect<i64, D>;
/// Convenience alias: floating-point point (supported by the P-Orth tree only).
pub type PointF<const D: usize> = Point<f64, D>;
/// Convenience alias: floating-point axis-aligned box.
pub type RectF<const D: usize> = Rect<f64, D>;
