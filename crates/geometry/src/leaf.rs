//! Cache-conscious SoA (structure-of-arrays) leaf storage.
//!
//! Every batch-parallel index in the workspace bottoms out in a leaf point
//! sweep: range filtering tests each point against a closed box, kNN
//! accumulates a squared distance per point. With the AoS layout
//! (`Vec<Point<T, D>>`) those inner loops interleave the `D` coordinates of
//! each point and branch per dimension, so the compiler cannot vectorize
//! them. [`LeafSoA`] stores one contiguous *coordinate plane* per dimension
//! instead and expresses the kernels as branch-light per-plane passes:
//!
//! * containment per dimension is two integer compares on
//!   [`Coord::total_key`] (an order-isomorphic embedding of `total_cmp`, so
//!   NaN and `-0.0` semantics match [`Rect::contains`] bit for bit); the
//!   per-dimension tests are ANDed branch-free per point, so counting is a
//!   single vectorizable compare-and-accumulate pass,
//! * range filtering computes a byte of hit flags per point (64-point
//!   blocks), then gathers survivors in ascending index order off the
//!   precomputed flags,
//! * kNN accumulates `diff_sq`/`dist_add` across the planes per point — the
//!   same operations in the same order as [`Point::dist_sq`], so distances
//!   (and therefore heap tie-breaks) are bit-identical to the AoS scan —
//!   and materialises a `Point` from the planes only on heap acceptance.
//!
//! Point order is preserved end to end (`from_points` keeps slice order,
//! every kernel visits ascending indices), so any consumer that swaps its
//! leaf representation from `Vec<Point>` to `LeafSoA` returns *exactly* the
//! same answers, including ties and NaN handling.
//!
//! The leaf also carries its bounding box, giving every kernel a small-rect
//! prefilter: a query box that misses the box answers without touching the
//! planes, and one that swallows it whole skips the per-point tests. kNN
//! gets the same treatment once its heap is full — a leaf whose bbox
//! minimum distance cannot beat the current k-th best is skipped whole,
//! guarded by a per-coordinate exactness fence ([`Coord::PRUNABLE_KEY_LO`] /
//! [`Coord::PRUNABLE_KEY_HI`]) outside which distance arithmetic could
//! overflow or go NaN and the prune falls back to the plain scan.
//!
//! The AoS reference kernels ([`aos_range_count`], [`aos_range_visit`],
//! [`aos_knn_offer`]) are kept as free functions: they are the equivalence
//! oracle for the proptests and the baseline for `bench_leaf`.

use crate::coord::Coord;
use crate::knn::KnnHeap;
use crate::point::Point;
use crate::rect::Rect;

/// Points per range-filter flag block (sizes the stack flag buffer).
const MASK_BLOCK: usize = 64;

/// A leaf's points in SoA layout: one contiguous coordinate plane per
/// dimension, plus the bounding box of the stored points.
///
/// Stored plane-major: coordinate `d` of point `i` lives at
/// `buf[d * len + i]` — a single allocation regardless of `D`.
#[derive(Clone, Debug)]
pub struct LeafSoA<T: Coord, const D: usize> {
    buf: Box<[T]>,
    /// The coordinate planes mapped through [`Coord::total_key`], same
    /// plane-major layout as `buf`. Precomputing the order-isomorphic integer
    /// keys at build time turns every range test into plain `i64` compares —
    /// no per-query conversion in the hot loops. (For `i64` coordinates the
    /// key plane duplicates `buf`; leaves are small, and keeping the kernels
    /// monomorphic is worth the few hundred bytes.)
    keys: Box<[i64]>,
    len: usize,
    bbox: Rect<T, D>,
    /// `bbox` corners as [`Coord::total_key`]s: the prefilter in the range
    /// kernels runs on integer compares instead of `total_cmp` calls.
    key_lo: [i64; D],
    key_hi: [i64; D],
}

impl<T: Coord, const D: usize> LeafSoA<T, D> {
    /// Transpose a point slice into planes, preserving order.
    pub fn from_points(points: &[Point<T, D>]) -> Self {
        let n = points.len();
        let mut buf = Vec::with_capacity(n * D);
        let mut keys = Vec::with_capacity(n * D);
        for d in 0..D {
            buf.extend(points.iter().map(|p| p.coords[d]));
            keys.extend(points.iter().map(|p| p.coords[d].total_key()));
        }
        let bbox = Rect::bounding(points);
        let key_lo = std::array::from_fn(|d| bbox.lo.coords[d].total_key());
        let key_hi = std::array::from_fn(|d| bbox.hi.coords[d].total_key());
        LeafSoA {
            buf: buf.into_boxed_slice(),
            keys: keys.into_boxed_slice(),
            len: n,
            bbox,
            key_lo,
            key_hi,
        }
    }

    /// An empty leaf.
    pub fn empty() -> Self {
        Self::from_points(&[])
    }

    /// Number of stored points.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no point is stored.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounding box of the stored points ([`Rect::empty`] when empty).
    #[inline(always)]
    pub fn bbox(&self) -> &Rect<T, D> {
        &self.bbox
    }

    /// The coordinate plane of dimension `d`.
    #[inline(always)]
    pub fn plane(&self, d: usize) -> &[T] {
        &self.buf[d * self.len..(d + 1) * self.len]
    }

    /// Reconstruct point `i` (original insertion order).
    #[inline(always)]
    pub fn point(&self, i: usize) -> Point<T, D> {
        assert!(i < self.len);
        // SAFETY: `buf.len() == D * len` by construction, `d < D`, `i < len`
        // (asserted above). Unchecked because this runs on every kNN heap
        // acceptance and every range-filter hit.
        Point::new(std::array::from_fn(|d| unsafe {
            *self.buf.get_unchecked(d * self.len + i)
        }))
    }

    /// [`Self::point`] without the bounds check, for the kernels' gather
    /// loops (one materialisation per range hit).
    ///
    /// # Safety
    /// `i < self.len`.
    #[inline(always)]
    unsafe fn point_unchecked(&self, i: usize) -> Point<T, D> {
        debug_assert!(i < self.len);
        Point::new(std::array::from_fn(|d| {
            *self.buf.get_unchecked(d * self.len + i)
        }))
    }

    /// The stored points in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Point<T, D>> + '_ {
        (0..self.len).map(|i| self.point(i))
    }

    /// Append all stored points (in order) to `out`.
    pub fn collect_into(&self, out: &mut Vec<Point<T, D>>) {
        out.reserve(self.len);
        out.extend(self.iter());
    }

    /// The stored points as a fresh `Vec`, in order. Mutating paths
    /// (leaf-level insert/delete) transpose back with this, run the existing
    /// AoS logic, and rebuild — keeping structure and answers identical to
    /// the pre-SoA representation.
    pub fn to_vec(&self) -> Vec<Point<T, D>> {
        let mut out = Vec::new();
        self.collect_into(&mut out);
        out
    }

    /// Per-point hit flags for the `block_len <= 64` points starting at
    /// `base`: `flags[j] != 0` iff point `base + j` lies in the key interval
    /// `[lo, hi]` on every dimension. One unit-stride pass per plane — a
    /// compare-and-mask loop over two contiguous slices, which the compiler
    /// turns into SIMD compares.
    #[inline]
    fn block_flags(
        &self,
        lo: &[i64; D],
        hi: &[i64; D],
        base: usize,
        block_len: usize,
        flags: &mut [u8; MASK_BLOCK],
    ) {
        // Dimension 0 writes the flags outright (no fill pass), the rest AND
        // into them — one unit-stride pass per plane either way.
        if D == 0 {
            flags[..block_len].fill(1);
            return;
        }
        let plane = &self.keys[base..][..block_len];
        for (f, &k) in flags[..block_len].iter_mut().zip(plane.iter()) {
            *f = ((k >= lo[0]) as u8) & ((k <= hi[0]) as u8);
        }
        for d in 1..D {
            let plane = &self.keys[d * self.len + base..][..block_len];
            for (f, &k) in flags[..block_len].iter_mut().zip(plane.iter()) {
                *f &= ((k >= lo[d]) as u8) & ((k <= hi[d]) as u8);
            }
        }
    }

    /// Per-dimension `total_key` bounds of `rect`.
    #[inline]
    fn key_bounds(rect: &Rect<T, D>) -> ([i64; D], [i64; D]) {
        (
            std::array::from_fn(|d| rect.lo.coords[d].total_key()),
            std::array::from_fn(|d| rect.hi.coords[d].total_key()),
        )
    }

    /// `true` iff the key interval `[lo, hi]` misses the leaf bbox on some
    /// dimension — the key-space mirror of `!rect.intersects(bbox)` for a
    /// nonempty leaf. An *empty* query rect (`lo > hi` somewhere) may slip
    /// past this test, but then falls through to per-point tests that reject
    /// every point, so answers still match the `Rect` predicates exactly.
    #[inline(always)]
    fn keys_disjoint(&self, lo: &[i64; D], hi: &[i64; D]) -> bool {
        // Accumulate branch-free; one well-predicted branch at the caller.
        let mut miss = 0u8;
        for d in 0..D {
            miss |= ((hi[d] < self.key_lo[d]) as u8) | ((self.key_hi[d] < lo[d]) as u8);
        }
        miss != 0
    }

    /// `true` iff the key interval `[lo, hi]` covers the whole leaf bbox —
    /// the key-space mirror of `rect.contains_rect(bbox)` for a nonempty
    /// leaf. Cannot fire for an empty query rect: it would need
    /// `lo[d] <= key_lo[d] <= key_hi[d] <= hi[d]`, i.e. `lo[d] <= hi[d]`,
    /// on every dimension.
    #[inline(always)]
    fn keys_cover(&self, lo: &[i64; D], hi: &[i64; D]) -> bool {
        (0..D).all(|d| lo[d] <= self.key_lo[d] && self.key_hi[d] <= hi[d])
    }

    /// Number of stored points inside the closed box `rect`. Exactly
    /// `aos_range_count` on the same points.
    #[inline]
    pub fn range_count(&self, rect: &Rect<T, D>) -> usize {
        let (lo, hi) = Self::key_bounds(rect);
        // No bbox prefilter and no full-cover shortcut here: the scan below
        // is a handful of SIMD iterations even at the largest leaf size, so
        // the prefilter compares would cost as much as they could save (and
        // the index node above the leaf already prunes disjoint subtrees and
        // takes fully-covered ones whole). A disjoint or empty query simply
        // counts zero hits.
        // Fused per-point pass: `D` unit-stride plane reads, branch-free
        // compare-and-accumulate. `get_unchecked` removes the bounds checks
        // that otherwise block vectorization of the multi-plane indexing.
        let mut count = 0usize;
        for i in 0..self.len {
            let mut hit = 1u8;
            for d in 0..D {
                // SAFETY: `keys.len() == D * len` by construction, `d < D`,
                // `i < len`.
                let k = unsafe { *self.keys.get_unchecked(d * self.len + i) };
                hit &= ((k >= lo[d]) as u8) & ((k <= hi[d]) as u8);
            }
            count += hit as usize;
        }
        count
    }

    /// Visit every stored point inside the closed box `rect`, in insertion
    /// order. Exactly `aos_range_visit` on the same points. Generic over the
    /// visitor (rather than `&mut dyn FnMut`) so the per-hit call can be
    /// devirtualized and inlined; `&mut dyn FnMut` still satisfies the bound.
    #[inline]
    pub fn range_visit<F: FnMut(&Point<T, D>)>(&self, rect: &Rect<T, D>, mut visit: F) {
        if self.len == 0 {
            return;
        }
        let (lo, hi) = Self::key_bounds(rect);
        if self.keys_disjoint(&lo, &hi) {
            return;
        }
        if self.keys_cover(&lo, &hi) {
            for i in 0..self.len {
                // SAFETY: `i < self.len`.
                visit(&unsafe { self.point_unchecked(i) });
            }
            return;
        }
        let mut flags = [0u8; MASK_BLOCK];
        let mut base = 0usize;
        while base < self.len {
            let block_len = (self.len - base).min(MASK_BLOCK);
            // Pass 1 (vectorized): per-point hit flags for the block.
            self.block_flags(&lo, &hi, base, block_len, &mut flags);
            // Pass 2: gather hits in insertion order; the branch tests a
            // precomputed byte, so sparse blocks predict perfectly.
            for (j, &f) in flags[..block_len].iter().enumerate() {
                if f != 0 {
                    // SAFETY: `base + j < base + block_len <= self.len`.
                    visit(&unsafe { self.point_unchecked(base + j) });
                }
            }
            base += MASK_BLOCK;
        }
    }

    /// Squared distance from `qc` to point `i`. Performs the same
    /// `diff_sq`/`dist_add` sequence as [`Point::dist_sq`] — same ops, same
    /// order — so the distance is bit-identical to the AoS scan.
    ///
    /// # Safety
    /// `i < self.len`.
    #[inline(always)]
    unsafe fn dist_unchecked(&self, qc: &[T; D], i: usize) -> T::Dist {
        let mut dist = T::DIST_ZERO;
        for (d, q) in qc.iter().enumerate() {
            // SAFETY: `buf.len() == D * len` by construction, `d < D`,
            // `i < len` per the caller's contract.
            let c = *self.buf.get_unchecked(d * self.len + i);
            dist = T::dist_add(dist, q.diff_sq(c));
        }
        dist
    }

    /// Fill phase of [`Self::knn_offer`]: while the heap holds fewer than k
    /// candidates every offer is accepted, no gate needed. At most k points
    /// ever run here across a whole query, so this is kept out of the hot
    /// scan's instruction stream. Returns the index of the first unoffered
    /// point.
    #[cold]
    #[inline(never)]
    fn knn_fill(&self, qc: &[T; D], heap: &mut KnnHeap<T, D>) -> usize {
        let mut i = 0;
        while i < self.len && !heap.is_full() {
            // SAFETY: `i < len`.
            let d = unsafe { self.dist_unchecked(qc, i) };
            let p = unsafe { self.point_unchecked(i) };
            heap.offer_improving(d, p);
            i += 1;
        }
        i
    }

    /// `true` when every stored coordinate's key sits inside the
    /// [`Coord::PRUNABLE_KEY_LO`] fence, i.e. bounding-box distance pruning
    /// is sound for this leaf. `key_lo`/`key_hi` are the per-dim key extrema,
    /// so two compares per dimension cover every point.
    #[inline(always)]
    fn prunable(&self) -> bool {
        (0..D).all(|d| T::PRUNABLE_KEY_LO <= self.key_lo[d] && self.key_hi[d] <= T::PRUNABLE_KEY_HI)
    }

    /// Offer every stored point to `heap` in insertion order. Distances and
    /// acceptance decisions are bit-identical to `aos_knn_offer` (see
    /// [`Self::dist_unchecked`] for distances; the gates below compose to
    /// exactly [`KnnHeap::offer`]'s acceptance test), so heap contents
    /// **including tie-breaks** match the AoS scan.
    #[inline]
    pub fn knn_offer(&self, query: &Point<T, D>, heap: &mut KnnHeap<T, D>) {
        let qc = query.coords;
        let len = self.len;
        let mut i = 0;
        if !heap.is_full() {
            i = self.knn_fill(&qc, heap);
        }
        // Leaf-level prune — the metadata payoff of the SoA header: the tight
        // bbox of the stored points sits right next to the planes, so when
        // even the closest corner of the leaf cannot beat the current k-th
        // distance, one rect-distance test retires the whole scan. Exact
        // because `dist_sq_to_point` lower-bounds every stored point's
        // distance (clamping shrinks each per-dim |diff|, and `diff_sq` /
        // `dist_add` are monotone), which holds only while all keys involved
        // sit inside the `PRUNABLE_KEY_*` fence — NaN/infinite coordinates
        // (`f64`) or magnitudes that could wrap the i128 accumulator (`i64`)
        // fall through to the per-point scan below instead.
        if i < len
            && self.prunable()
            && (0..D).all(|d| {
                let k = qc[d].total_key();
                (T::PRUNABLE_KEY_LO..=T::PRUNABLE_KEY_HI).contains(&k)
            })
            && T::dist_cmp(self.bbox.dist_sq_to_point(query), heap.top_dist())
                != std::cmp::Ordering::Less
        {
            return;
        }
        // Bound phase: a full heap never shrinks, so from here the gate is a
        // single distance compare against the current k-th best
        // ([`KnnHeap::top_dist`]) — exactly [`KnnHeap::offer`]'s acceptance
        // test minus the now-constant fullness check. Candidates run in
        // insertion order against the live bound, and a `Point` is
        // materialised from the planes only on acceptance.
        if i == len {
            return;
        }
        while i < len {
            // SAFETY: `i < len`.
            let d = unsafe { self.dist_unchecked(&qc, i) };
            if T::dist_cmp(d, heap.top_dist()) == std::cmp::Ordering::Less {
                // SAFETY: `i < len`.
                let p = unsafe { self.point_unchecked(i) };
                heap.offer_improving(d, p);
            }
            i += 1;
        }
    }
}

impl<T: Coord, const D: usize> PartialEq for LeafSoA<T, D> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.buf == other.buf
    }
}

// ---------------------------------------------------------------------------
// AoS reference kernels: the equivalence oracle and the bench baseline.
// ---------------------------------------------------------------------------

/// AoS range count: the plain filter the indexes used before SoA leaves.
pub fn aos_range_count<T: Coord, const D: usize>(
    points: &[Point<T, D>],
    rect: &Rect<T, D>,
) -> usize {
    points.iter().filter(|p| rect.contains(p)).count()
}

/// AoS range visit, in slice order.
pub fn aos_range_visit<T: Coord, const D: usize, F: FnMut(&Point<T, D>)>(
    points: &[Point<T, D>],
    rect: &Rect<T, D>,
    mut visit: F,
) {
    for p in points {
        if rect.contains(p) {
            visit(p);
        }
    }
}

/// AoS kNN accumulation, in slice order.
pub fn aos_knn_offer<T: Coord, const D: usize>(
    points: &[Point<T, D>],
    query: &Point<T, D>,
    heap: &mut KnnHeap<T, D>,
) {
    for p in points {
        heap.offer_point(query, *p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PointF, PointI, RectI};

    fn leaf_i(pts: &[[i64; 2]]) -> (Vec<PointI<2>>, LeafSoA<i64, 2>) {
        let points: Vec<PointI<2>> = pts.iter().map(|&c| PointI::new(c)).collect();
        let soa = LeafSoA::from_points(&points);
        (points, soa)
    }

    #[test]
    fn round_trips_preserve_order() {
        let (points, soa) = leaf_i(&[[3, 1], [0, 0], [3, 1], [-5, 9]]);
        assert_eq!(soa.len(), 4);
        assert_eq!(soa.to_vec(), points);
        assert_eq!(soa.point(2), points[2]);
        assert_eq!(soa.bbox(), &Rect::bounding(&points));
    }

    #[test]
    fn empty_leaf() {
        let soa = LeafSoA::<i64, 2>::empty();
        assert!(soa.is_empty());
        assert!(soa.bbox().is_empty());
        let everything = RectI::<2>::from_corners(PointI::new([-10, -10]), PointI::new([10, 10]));
        assert_eq!(soa.range_count(&everything), 0);
        let mut heap = KnnHeap::new(3);
        soa.knn_offer(&PointI::new([0, 0]), &mut heap);
        assert!(heap.is_empty());
    }

    #[test]
    fn kernels_match_aos_on_a_mixed_leaf() {
        let (points, soa) = leaf_i(&[
            [0, 0],
            [10, 10],
            [-3, 7],
            [5, 5],
            [10, 0],
            [0, 10],
            [-3, 7],
            [1_000_000_000, -1_000_000_000],
        ]);
        for rect in [
            RectI::from_corners(PointI::new([0, 0]), PointI::new([10, 10])),
            RectI::from_corners(PointI::new([-5, -5]), PointI::new([-1, 8])),
            RectI::from_corners(PointI::new([7, 7]), PointI::new([8, 8])),
            RectI::from_corners(
                PointI::new([i64::MIN, i64::MIN]),
                PointI::new([i64::MAX, i64::MAX]),
            ),
        ] {
            assert_eq!(soa.range_count(&rect), aos_range_count(&points, &rect));
            let mut got = Vec::new();
            soa.range_visit(&rect, |p: &Point<i64, 2>| got.push(*p));
            let mut want = Vec::new();
            aos_range_visit(&points, &rect, |p: &Point<i64, 2>| want.push(*p));
            assert_eq!(got, want, "visit order must match AoS for {rect:?}");
        }
        let q = PointI::new([2, 3]);
        let mut h_soa = KnnHeap::new(3);
        soa.knn_offer(&q, &mut h_soa);
        let mut h_aos = KnnHeap::new(3);
        aos_knn_offer(&points, &q, &mut h_aos);
        assert_eq!(h_soa.into_sorted_with_dist(), h_aos.into_sorted_with_dist());
    }

    #[test]
    fn f64_nan_and_negative_zero_match_aos() {
        let points: Vec<PointF<2>> = [
            [0.0, 0.0],
            [-0.0, 0.0],
            [0.0, -0.0],
            [f64::NAN, 1.0],
            [1.0, f64::NAN],
            [f64::INFINITY, f64::NEG_INFINITY],
            [f64::MIN_POSITIVE / 4.0, -f64::MIN_POSITIVE / 4.0],
        ]
        .iter()
        .map(|&c| PointF::new(c))
        .collect();
        let soa = LeafSoA::from_points(&points);
        // Rects whose corners hit the special values exactly: containment
        // must follow total_cmp (−0.0 < +0.0 < … < NaN) identically.
        let rects = [
            Rect::from_corners(PointF::new([-0.0, -0.0]), PointF::new([0.0, 0.0])),
            Rect::from_corners(PointF::new([0.0, -1.0]), PointF::new([f64::NAN, 2.0])),
            Rect::from_corners(PointF::new([-1.0, -1.0]), PointF::new([1.0, 1.0])),
            Rect::from_corners(
                PointF::new([f64::NEG_INFINITY, f64::NEG_INFINITY]),
                PointF::new([f64::INFINITY, f64::INFINITY]),
            ),
        ];
        for rect in &rects {
            assert_eq!(
                soa.range_count(rect),
                aos_range_count(&points, rect),
                "count mismatch for {rect:?}"
            );
            let mut got = Vec::new();
            soa.range_visit(rect, |p: &Point<f64, 2>| {
                got.push(p.coords.map(f64::to_bits))
            });
            let mut want = Vec::new();
            aos_range_visit(&points, rect, |p: &Point<f64, 2>| {
                want.push(p.coords.map(f64::to_bits))
            });
            assert_eq!(got, want, "bit-exact visit mismatch for {rect:?}");
        }
        let q = PointF::new([0.5, -0.5]);
        let mut h_soa = KnnHeap::new(4);
        soa.knn_offer(&q, &mut h_soa);
        let mut h_aos = KnnHeap::new(4);
        aos_knn_offer(&points, &q, &mut h_aos);
        let bits = |v: Vec<(f64, PointF<2>)>| -> Vec<(u64, [u64; 2])> {
            v.into_iter()
                .map(|(d, p)| (d.to_bits(), p.coords.map(f64::to_bits)))
                .collect()
        };
        assert_eq!(
            bits(h_soa.into_sorted_with_dist()),
            bits(h_aos.into_sorted_with_dist()),
            "kNN distances and ties must be bit-identical"
        );
    }

    #[test]
    fn multi_block_leaves_cross_mask_boundaries() {
        // > 64 points so the mask kernels straddle block boundaries; the
        // rect catches a sparse diagonal so the tail mask matters.
        let points: Vec<PointI<2>> = (0..157).map(|i| PointI::new([i, i * 3 % 101])).collect();
        let soa = LeafSoA::from_points(&points);
        let rect = RectI::from_corners(PointI::new([10, 10]), PointI::new([120, 60]));
        assert_eq!(soa.range_count(&rect), aos_range_count(&points, &rect));
        let mut got = Vec::new();
        soa.range_visit(&rect, |p: &Point<i64, 2>| got.push(*p));
        let mut want = Vec::new();
        aos_range_visit(&points, &rect, |p: &Point<i64, 2>| want.push(*p));
        assert_eq!(got, want);
        let q = PointI::new([50, 50]);
        let mut h_soa = KnnHeap::new(9);
        soa.knn_offer(&q, &mut h_soa);
        let mut h_aos = KnnHeap::new(9);
        aos_knn_offer(&points, &q, &mut h_aos);
        assert_eq!(h_soa.into_sorted_with_dist(), h_aos.into_sorted_with_dist());
    }
}
