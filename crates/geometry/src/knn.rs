//! Bounded candidate set for k-nearest-neighbour searches.
//!
//! Every index in the workspace answers kNN queries the same way the paper
//! describes: traverse the tree, keep the `k` closest points seen so far, and
//! prune any subtree whose bounding box is farther than the current k-th
//! distance. [`KnnHeap`] is that shared "k closest so far" structure — a
//! bounded max-heap keyed by squared distance.

use crate::coord::Coord;
use crate::point::Point;

/// A bounded max-heap of the `k` nearest candidates found so far.
pub struct KnnHeap<T: Coord, const D: usize> {
    k: usize,
    /// Binary max-heap by distance, stored as a flat array.
    heap: Vec<(T::Dist, Point<T, D>)>,
}

impl<T: Coord, const D: usize> KnnHeap<T, D> {
    /// A collector for the `k` nearest neighbours (`k >= 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "kNN queries require k >= 1");
        KnnHeap {
            k,
            heap: Vec::with_capacity(k + 1),
        }
    }

    /// Clear the heap and retarget it to `k` candidates, keeping the backing
    /// allocation. This is the reuse hook of the allocation-free query layer:
    /// batch drivers hold one heap per worker thread and `reset` it between
    /// queries instead of allocating a fresh heap.
    pub fn reset(&mut self, k: usize) {
        assert!(k >= 1, "kNN queries require k >= 1");
        self.k = k;
        self.heap.clear();
        // len is 0 here, so this guarantees capacity >= k + 1 (no-op when the
        // previous run already grew the buffer enough).
        self.heap.reserve(k + 1);
    }

    /// Number of candidates currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no candidate has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` once `k` candidates are held (pruning becomes possible).
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The current pruning radius: the distance of the k-th best candidate, or
    /// `Dist::MAX` while fewer than `k` candidates have been seen.
    #[inline]
    pub fn worst_dist(&self) -> T::Dist {
        if self.is_full() {
            self.heap[0].0
        } else {
            T::DIST_MAX
        }
    }

    /// `true` if a subtree at squared distance `dist` could still contribute.
    #[inline]
    pub fn could_improve(&self, dist: T::Dist) -> bool {
        !self.is_full() || T::dist_cmp(dist, self.worst_dist()) == std::cmp::Ordering::Less
    }

    /// Offer a candidate point at squared distance `dist`.
    #[inline]
    pub fn offer(&mut self, dist: T::Dist, p: Point<T, D>) {
        if self.is_full() {
            if T::dist_cmp(dist, self.heap[0].0) != std::cmp::Ordering::Less {
                return;
            }
            self.heap[0] = (dist, p);
            self.sift_down(0);
        } else {
            self.heap.push((dist, p));
            self.sift_up(self.heap.len() - 1);
        }
    }

    /// [`Self::offer`] for a candidate the caller has already gated through
    /// [`Self::could_improve`] — skips re-testing acceptance. Same heap
    /// mutations as `offer` in the accepting case, so results are identical.
    #[inline]
    pub(crate) fn offer_improving(&mut self, dist: T::Dist, p: Point<T, D>) {
        debug_assert!(self.could_improve(dist));
        if self.is_full() {
            self.heap[0] = (dist, p);
            self.sift_down(0);
        } else {
            self.heap.push((dist, p));
            self.sift_up(self.heap.len() - 1);
        }
    }

    /// The k-th best distance of a **full** heap — [`Self::worst_dist`]
    /// minus the fullness branch, for gate loops that have already
    /// established fullness (a full heap never shrinks until `reset`).
    #[inline]
    pub(crate) fn top_dist(&self) -> T::Dist {
        debug_assert!(self.is_full());
        self.heap[0].0
    }

    /// Offer a candidate, computing its distance from the query point.
    #[inline]
    pub fn offer_point(&mut self, query: &Point<T, D>, p: Point<T, D>) {
        self.offer(query.dist_sq(&p), p);
    }

    /// Finish the query: candidates sorted by increasing distance.
    pub fn into_sorted(mut self) -> Vec<Point<T, D>> {
        self.heap
            .sort_by(|a, b| T::dist_cmp(a.0, b.0).then_with(|| a.1.lex_cmp(&b.1)));
        self.heap.into_iter().map(|(_, p)| p).collect()
    }

    /// Finish the query keeping the distances, sorted by increasing distance.
    pub fn into_sorted_with_dist(mut self) -> Vec<(T::Dist, Point<T, D>)> {
        self.heap
            .sort_by(|a, b| T::dist_cmp(a.0, b.0).then_with(|| a.1.lex_cmp(&b.1)));
        self.heap
    }

    /// Drain the candidates in increasing-distance order into `out`, leaving
    /// the heap empty (and its allocation intact) for the next query.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<Point<T, D>>) {
        self.heap
            .sort_by(|a, b| T::dist_cmp(a.0, b.0).then_with(|| a.1.lex_cmp(&b.1)));
        out.extend(self.heap.drain(..).map(|(_, p)| p));
    }

    /// Drain the candidates into a fresh sorted `Vec`, leaving the heap empty
    /// and reusable.
    pub fn drain_sorted(&mut self) -> Vec<Point<T, D>> {
        let mut out = Vec::with_capacity(self.heap.len());
        self.drain_sorted_into(&mut out);
        out
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if T::dist_cmp(self.heap[i].0, self.heap[parent].0) == std::cmp::Ordering::Greater {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < n
                && T::dist_cmp(self.heap[l].0, self.heap[largest].0) == std::cmp::Ordering::Greater
            {
                largest = l;
            }
            if r < n
                && T::dist_cmp(self.heap[r].0, self.heap[largest].0) == std::cmp::Ordering::Greater
            {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }
}

/// Reference kNN by exhaustive scan — the oracle every index is tested against.
pub fn brute_force_knn<T: Coord, const D: usize>(
    points: &[Point<T, D>],
    query: &Point<T, D>,
    k: usize,
) -> Vec<Point<T, D>> {
    let mut heap = KnnHeap::<T, D>::new(k);
    for p in points {
        heap.offer_point(query, *p);
    }
    heap.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PointI;
    use proptest::prelude::*;

    fn p(x: i64, y: i64) -> PointI<2> {
        PointI::new([x, y])
    }

    #[test]
    fn keeps_k_nearest() {
        let mut h = KnnHeap::<i64, 2>::new(2);
        let q = p(0, 0);
        for pt in [p(10, 0), p(1, 0), p(5, 0), p(2, 0), p(100, 100)] {
            h.offer_point(&q, pt);
        }
        assert_eq!(h.into_sorted(), vec![p(1, 0), p(2, 0)]);
    }

    #[test]
    fn fewer_points_than_k() {
        let mut h = KnnHeap::<i64, 2>::new(10);
        let q = p(0, 0);
        h.offer_point(&q, p(3, 4));
        h.offer_point(&q, p(1, 1));
        let out = h.into_sorted();
        assert_eq!(out, vec![p(1, 1), p(3, 4)]);
    }

    #[test]
    fn pruning_radius_tracks_kth_distance() {
        let mut h = KnnHeap::<i64, 2>::new(2);
        let q = p(0, 0);
        assert!(h.could_improve(i128::MAX - 1));
        h.offer_point(&q, p(3, 0)); // dist 9
        assert!(!h.is_full());
        h.offer_point(&q, p(5, 0)); // dist 25
        assert!(h.is_full());
        assert_eq!(h.worst_dist(), 25);
        assert!(h.could_improve(24));
        assert!(!h.could_improve(25));
        h.offer_point(&q, p(1, 0)); // dist 1 replaces 25
        assert_eq!(h.worst_dist(), 9);
    }

    #[test]
    fn reset_reuses_the_heap_across_k_changes() {
        let q = p(0, 0);
        let mut h = KnnHeap::<i64, 2>::new(2);
        h.offer_point(&q, p(1, 0));
        h.offer_point(&q, p(2, 0));
        // Growing k on a reused heap must hold all k candidates.
        h.reset(5);
        assert!(h.is_empty());
        for x in 1..=10 {
            h.offer_point(&q, p(x, 0));
        }
        assert_eq!(
            h.drain_sorted(),
            vec![p(1, 0), p(2, 0), p(3, 0), p(4, 0), p(5, 0)]
        );
        // Shrinking k tightens the pruning radius again.
        h.reset(1);
        h.offer_point(&q, p(9, 9));
        h.offer_point(&q, p(1, 1));
        assert_eq!(h.drain_sorted(), vec![p(1, 1)]);
    }

    #[test]
    fn duplicate_points_allowed() {
        let mut h = KnnHeap::<i64, 2>::new(3);
        let q = p(0, 0);
        for _ in 0..5 {
            h.offer_point(&q, p(2, 2));
        }
        assert_eq!(h.into_sorted().len(), 3);
    }

    #[test]
    fn brute_force_small() {
        let pts = vec![p(0, 0), p(10, 10), p(1, 1), p(-5, 2)];
        assert_eq!(brute_force_knn(&pts, &p(0, 0), 2), vec![p(0, 0), p(1, 1)]);
    }

    proptest! {
        /// The heap returns exactly the k smallest distances, whatever the
        /// insertion order.
        #[test]
        fn matches_sort_based_selection(
            pts in proptest::collection::vec((-1000i64..1000, -1000i64..1000), 1..200),
            k in 1usize..20,
        ) {
            let q = p(7, -3);
            let points: Vec<PointI<2>> = pts.iter().map(|&(x, y)| p(x, y)).collect();
            let got = brute_force_knn(&points, &q, k);

            let mut by_dist: Vec<_> = points.iter().map(|pt| (q.dist_sq(pt), *pt)).collect();
            by_dist.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.lex_cmp(&b.1)));
            let expect_dists: Vec<i128> =
                by_dist.iter().take(k.min(points.len())).map(|e| e.0).collect();
            let got_dists: Vec<i128> = got.iter().map(|pt| q.dist_sq(pt)).collect();
            prop_assert_eq!(got_dists, expect_dists);
        }
    }
}
