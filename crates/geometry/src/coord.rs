//! The coordinate abstraction.
//!
//! Every spatial index in the workspace is generic over the coordinate type
//! through the [`Coord`] trait. Two implementations are provided:
//!
//! * `i64` — the paper's evaluation uses 64-bit integer coordinates in
//!   `[0, 10^9]`; squared distances are accumulated in `i128` so they are exact,
//! * `f64` — supported by the P-Orth tree, which (unlike the SFC-based indexes)
//!   places no restriction on the coordinate domain (§3, "Applicability").

use std::fmt::Debug;

/// A scalar coordinate.
///
/// The associated [`Coord::Dist`] type holds squared distances; it is wide
/// enough that `(a - b)^2` summed over `D <= 8` dimensions never overflows for
/// the supported coordinate ranges.
pub trait Coord: Copy + Clone + PartialOrd + PartialEq + Debug + Send + Sync + 'static {
    /// Accumulator type for squared distances.
    type Dist: Copy + Clone + PartialOrd + Debug + Send + Sync + 'static;

    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Smallest representable value (used to seed bounding-box computations).
    const MIN_VALUE: Self;
    /// Largest representable value.
    const MAX_VALUE: Self;

    /// Zero of the distance accumulator.
    const DIST_ZERO: Self::Dist;
    /// Largest distance value (the "infinite" initial radius of a kNN search).
    const DIST_MAX: Self::Dist;

    /// `(self - other)^2` as a distance contribution, computed without overflow.
    fn diff_sq(self, other: Self) -> Self::Dist;
    /// Sum of two distance contributions.
    fn dist_add(a: Self::Dist, b: Self::Dist) -> Self::Dist;
    /// Midpoint of two coordinates, rounded towards negative infinity for
    /// integers. This is the spatial-median splitter used by Orth-trees.
    fn mid_floor(self, other: Self) -> Self;
    /// The next representable coordinate strictly above `self` for discrete
    /// types (`x + 1` for integers); identity for continuous types (`f64`).
    /// Used to trim the upper child region of an Orth-tree split so the
    /// recursion always makes progress on integer grids.
    fn next_up_discrete(self) -> Self;
    /// Total order even for floating point (`f64::total_cmp`); integer types
    /// use their natural order.
    fn total_cmp(&self, other: &Self) -> std::cmp::Ordering;
    /// An `i64` key embedding [`Coord::total_cmp`] into the integer order:
    /// `a.total_cmp(&b) == a.total_key().cmp(&b.total_key())` for **every**
    /// bit pattern — including every NaN payload and `-0.0` for `f64`. This
    /// is the branch-free comparison behind the SoA leaf kernels
    /// ([`crate::leaf::LeafSoA`]): closed-interval containment becomes two
    /// integer compares per coordinate plane, which auto-vectorize.
    fn total_key(self) -> i64;
    /// [`Coord::total_key`] range inside which distance pruning is sound.
    ///
    /// When every coordinate involved has a key in
    /// `[PRUNABLE_KEY_LO, PRUNABLE_KEY_HI]`, the distance arithmetic is
    /// *monotone*: shrinking a per-dimension |difference| never grows
    /// `diff_sq`, and `dist_add` never decreases under larger inputs — no
    /// NaN can appear (`f64`), and no `Dist` overflow for sums of up to 8
    /// dimensions (`i64`). Inside this fence
    /// [`crate::Rect::dist_sq_to_point`] is an exact lower bound on the
    /// distance to every in-box point, so a kNN scan may skip a whole leaf
    /// on its bounding box alone. Outside it, kernels must fall back to
    /// per-point tests.
    const PRUNABLE_KEY_LO: i64;
    /// Upper end of the prunable key range; see [`Coord::PRUNABLE_KEY_LO`].
    const PRUNABLE_KEY_HI: i64;
    /// Total order on distance values (needed because `f64` distances are only
    /// `PartialOrd`); every kNN search uses this to rank candidates.
    fn dist_cmp(a: Self::Dist, b: Self::Dist) -> std::cmp::Ordering;
    /// Convert to `f64` for reporting/plotting purposes (lossy for large i64).
    fn to_f64(self) -> f64;
    /// Convert a distance value to `f64` for reporting purposes.
    fn dist_to_f64(d: Self::Dist) -> f64;
}

impl Coord for i64 {
    type Dist = i128;

    const ZERO: Self = 0;
    const ONE: Self = 1;
    const MIN_VALUE: Self = i64::MIN;
    const MAX_VALUE: Self = i64::MAX;

    const DIST_ZERO: Self::Dist = 0;
    const DIST_MAX: Self::Dist = i128::MAX;

    #[inline(always)]
    fn diff_sq(self, other: Self) -> i128 {
        let d = (self as i128) - (other as i128);
        d * d
    }

    #[inline(always)]
    fn dist_add(a: i128, b: i128) -> i128 {
        a + b
    }

    #[inline(always)]
    fn mid_floor(self, other: Self) -> Self {
        // Overflow-safe midpoint; rounds toward negative infinity so that the
        // left/lower half of an Orth-tree split is never empty when the two
        // endpoints differ.
        (self >> 1) + (other >> 1) + (self & other & 1)
    }

    #[inline(always)]
    fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cmp(other)
    }

    #[inline(always)]
    fn total_key(self) -> i64 {
        self
    }

    // |coord| <= 2^61 - 1 keeps each diff at most 2^62 - 2, each square
    // strictly below 2^124, and a sum of up to 8 of them strictly below
    // 2^127 — no i128 wrap. (At exactly ±2^61 an 8-dim sum hits 2^127,
    // one past i128::MAX.)
    const PRUNABLE_KEY_LO: i64 = -((1 << 61) - 1);
    const PRUNABLE_KEY_HI: i64 = (1 << 61) - 1;

    #[inline(always)]
    fn dist_cmp(a: i128, b: i128) -> std::cmp::Ordering {
        a.cmp(&b)
    }

    #[inline(always)]
    fn next_up_discrete(self) -> Self {
        self.saturating_add(1)
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline(always)]
    fn dist_to_f64(d: i128) -> f64 {
        d as f64
    }
}

impl Coord for f64 {
    type Dist = f64;

    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const MIN_VALUE: Self = f64::NEG_INFINITY;
    const MAX_VALUE: Self = f64::INFINITY;

    const DIST_ZERO: Self::Dist = 0.0;
    const DIST_MAX: Self::Dist = f64::INFINITY;

    #[inline(always)]
    fn diff_sq(self, other: Self) -> f64 {
        let d = self - other;
        d * d
    }

    #[inline(always)]
    fn dist_add(a: f64, b: f64) -> f64 {
        a + b
    }

    #[inline(always)]
    fn mid_floor(self, other: Self) -> Self {
        self * 0.5 + other * 0.5
    }

    #[inline(always)]
    fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
        f64::total_cmp(self, other)
    }

    #[inline(always)]
    fn total_key(self) -> i64 {
        // The sign-magnitude → two's-complement trick used by
        // `f64::total_cmp` itself: flip the lower 63 bits of negative
        // values, so the integer order of the keys is exactly the IEEE 754
        // totalOrder predicate (-NaN < -inf < … < -0.0 < +0.0 < … < +NaN).
        let b = self.to_bits() as i64;
        b ^ (((b >> 63) as u64 >> 1) as i64)
    }

    // The keys of ±f64::MAX: everything strictly outside is an infinity or a
    // NaN, for which squared-distance arithmetic stops being monotone.
    // (Finite differences may still overflow to +inf, but +inf squares and
    // sums stay +inf — monotone — whereas inf - inf or a NaN input poisons
    // the bound.) Same sign-magnitude fold as `total_key`, spelled out here
    // because trait methods cannot run in const context.
    const PRUNABLE_KEY_LO: i64 = {
        let b = (-f64::MAX).to_bits() as i64;
        b ^ (((b >> 63) as u64 >> 1) as i64)
    };
    const PRUNABLE_KEY_HI: i64 = f64::MAX.to_bits() as i64;

    #[inline(always)]
    fn dist_cmp(a: f64, b: f64) -> std::cmp::Ordering {
        f64::total_cmp(&a, &b)
    }

    #[inline(always)]
    fn next_up_discrete(self) -> Self {
        self
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn dist_to_f64(d: f64) -> f64 {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_diff_sq_is_exact_at_paper_scale() {
        // Paper coordinates live in [0, 10^9]; the worst-case squared diff is 10^18,
        // which overflows i64 multiplication but not the i128 accumulator.
        let a: i64 = 1_000_000_000;
        let b: i64 = 0;
        assert_eq!(a.diff_sq(b), 1_000_000_000_000_000_000i128);
        assert_eq!(b.diff_sq(a), 1_000_000_000_000_000_000i128);
    }

    #[test]
    fn prunable_key_range_matches_total_key() {
        // The const fold must agree with the runtime key function.
        assert_eq!(f64::PRUNABLE_KEY_LO, (-f64::MAX).total_key());
        assert_eq!(f64::PRUNABLE_KEY_HI, f64::MAX.total_key());
        // Infinities and NaNs (either sign) fall outside the fence.
        for x in [
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            -f64::NAN,
            f64::from_bits(0x7ff0_0000_0000_0001), // NaN payload
        ] {
            let k = x.total_key();
            assert!(
                !(f64::PRUNABLE_KEY_LO..=f64::PRUNABLE_KEY_HI).contains(&k),
                "{x:?} must not be prunable"
            );
        }
        // Every finite value is inside.
        for x in [0.0, -0.0, f64::MAX, -f64::MAX, 1e-300, -1e308] {
            let k = x.total_key();
            assert!((f64::PRUNABLE_KEY_LO..=f64::PRUNABLE_KEY_HI).contains(&k));
        }
        // i64: the fence keeps an 8-dimensional squared sum inside i128.
        let worst = i64::PRUNABLE_KEY_HI.diff_sq(i64::PRUNABLE_KEY_LO);
        assert!(worst.checked_mul(8).is_some());
    }

    #[test]
    fn i64_diff_sq_symmetric_and_zero_on_equal() {
        assert_eq!(5i64.diff_sq(5), 0);
        assert_eq!((-7i64).diff_sq(3), 3i64.diff_sq(-7));
    }

    #[test]
    fn i64_midpoint_matches_arithmetic_mean_floor() {
        assert_eq!(0i64.mid_floor(10), 5);
        assert_eq!(1i64.mid_floor(2), 1);
        assert_eq!((-3i64).mid_floor(3), 0);
        assert_eq!((-5i64).mid_floor(-2), -4); // floor(-3.5) = -4
    }

    #[test]
    fn i64_midpoint_no_overflow_at_extremes() {
        let m = i64::MAX.mid_floor(i64::MAX - 2);
        assert_eq!(m, i64::MAX - 1);
        let m2 = i64::MIN.mid_floor(i64::MAX);
        assert!(m2 == 0 || m2 == -1);
    }

    #[test]
    fn f64_midpoint_and_dist() {
        assert_eq!(1.0f64.mid_floor(3.0), 2.0);
        assert_eq!(2.0f64.diff_sq(5.0), 9.0);
        assert_eq!(f64::dist_add(1.5, 2.5), 4.0);
    }

    #[test]
    fn f64_total_cmp_handles_nan() {
        use std::cmp::Ordering;
        assert_eq!(Coord::total_cmp(&1.0f64, &2.0), Ordering::Less);
        // NaN sorts greater than any finite value under total_cmp.
        assert_eq!(Coord::total_cmp(&f64::NAN, &1.0), Ordering::Greater);
    }

    #[test]
    fn total_key_embeds_total_cmp_exactly() {
        // Every tricky f64 bit pattern: both NaN sign/payload variants, both
        // zeros, infinities, subnormals, ordinary values.
        let specials = [
            f64::from_bits(0xFFF8_0000_0000_0001), // -NaN, payload set
            f64::NEG_INFINITY,
            f64::MIN,
            -1.0,
            -f64::MIN_POSITIVE / 2.0, // negative subnormal
            -0.0,
            0.0,
            f64::MIN_POSITIVE / 2.0,
            1.0,
            f64::MAX,
            f64::INFINITY,
            f64::NAN,
            f64::from_bits(0x7FF8_0000_0000_0001), // +NaN, payload set
        ];
        for &a in &specials {
            for &b in &specials {
                assert_eq!(
                    Coord::total_cmp(&a, &b),
                    a.total_key().cmp(&b.total_key()),
                    "total_key order mismatch for {a:?} ({:#x}) vs {b:?} ({:#x})",
                    a.to_bits(),
                    b.to_bits(),
                );
            }
        }
        for (a, b) in [(i64::MIN, -1i64), (-1, 0), (0, 1), (1, i64::MAX)] {
            assert_eq!(Coord::total_cmp(&a, &b), a.total_key().cmp(&b.total_key()));
        }
    }

    #[test]
    fn midpoint_between_bounds() {
        for (a, b) in [(0i64, 1), (0, 2), (7, 9), (100, 1000), (-50, 50)] {
            let m = a.mid_floor(b);
            assert!(m >= a && m < b, "midpoint {m} not in [{a}, {b})");
        }
    }
}
