//! The 8-byte little-endian coordinate codec shared by every serialized
//! form in the workspace: the ψ-net wire protocol (`psi-net`), the
//! write-ahead log and checkpoint snapshots (`psi-server`), and the binary
//! point-file loader (`psi-cli`).
//!
//! One codec, one contract: `i64` travels as its raw little-endian bytes,
//! `f64` as its IEEE-754 bit pattern — so NaN payloads and `-0.0` survive a
//! round trip bit-for-bit (value equality would lie about both). The `TAG`
//! byte lets a header announce which interpretation its words carry, so a
//! reader can reject a shape mismatch before decoding a single point.

use crate::coord::Coord;

/// Coordinate types with a canonical 8-byte little-endian serialized form,
/// tagged so readers and writers agree on the interpretation up front.
pub trait WireCoord: Coord {
    /// Coordinate tag carried in headers (0 = i64, 1 = f64).
    const TAG: u8;
    /// Little-endian wire form.
    fn to_wire(self) -> [u8; 8];
    /// Decode the little-endian wire form.
    fn from_wire(bytes: [u8; 8]) -> Self;
}

impl WireCoord for i64 {
    const TAG: u8 = 0;
    #[inline]
    fn to_wire(self) -> [u8; 8] {
        self.to_le_bytes()
    }
    #[inline]
    fn from_wire(bytes: [u8; 8]) -> Self {
        i64::from_le_bytes(bytes)
    }
}

impl WireCoord for f64 {
    const TAG: u8 = 1;
    #[inline]
    fn to_wire(self) -> [u8; 8] {
        self.to_bits().to_le_bytes()
    }
    #[inline]
    fn from_wire(bytes: [u8; 8]) -> Self {
        f64::from_bits(u64::from_le_bytes(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_round_trips_raw_le() {
        for v in [0i64, 1, -1, i64::MIN, i64::MAX, 0x0123_4567_89AB_CDEF] {
            assert_eq!(i64::from_wire(v.to_wire()), v);
            assert_eq!(v.to_wire(), v.to_le_bytes());
        }
    }

    #[test]
    fn f64_round_trips_bit_exact() {
        // Value equality would conflate NaN payloads and -0.0 with 0.0;
        // the codec must preserve the exact bit pattern.
        for bits in [
            0u64,
            (-0.0f64).to_bits(),
            f64::NAN.to_bits(),
            f64::NAN.to_bits() | 0xDEAD, // NaN with a payload
            f64::INFINITY.to_bits(),
            f64::MIN_POSITIVE.to_bits(),
            1u64, // subnormal
        ] {
            let v = f64::from_bits(bits);
            assert_eq!(f64::from_wire(v.to_wire()).to_bits(), bits);
        }
    }
}
