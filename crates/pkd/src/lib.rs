//! **Pkd-tree** baseline — the parallel kd-tree with batch updates the paper
//! compares against throughout its evaluation (its main competitor).
//!
//! A kd-tree splits at the *object median* of one dimension, giving perfectly
//! balanced partitions and the strongest pruning, at the price of expensive
//! updates. The Pkd-tree parallelises construction by approximating the median
//! with a sample and partitioning the points with a sieve pass, and handles
//! batch updates with *reconstruction-based rebalancing*: points are pushed
//! down to the leaves, and any subtree whose child weights drift beyond an
//! imbalance factor `α` (0.3 in the paper, §C) is rebuilt from scratch. This
//! is precisely the `O(m log² n)` amortised update cost the paper contrasts
//! with the `O(m log n)` / `O(m log Δ)` bounds of SPaC-trees and P-Orth trees.
//!
//! # Example
//!
//! ```
//! use psi_geometry::{Point, PointI};
//! use psi_pkd::PkdTree;
//!
//! let pts: Vec<PointI<2>> = (0..1000).map(|i| Point::new([i, (i * 37) % 1000])).collect();
//! let mut t = PkdTree::build(&pts);
//! t.batch_insert(&[Point::new([5, 5])]);
//! assert_eq!(t.len(), 1001);
//! assert_eq!(t.knn(&Point::new([5, 6]), 1), vec![Point::new([5, 5])]);
//! ```

use psi_geometry::{Coord, KnnHeap, LeafSoA, Point, Rect};
use psi_parutils::sieve_by;
use psi_parutils::stats::counters;

/// Tuning parameters of a [`PkdTree`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PkdConfig {
    /// Leaf wrap threshold `φ` (paper default 32).
    pub leaf_cap: usize,
    /// Imbalance factor `α`: a subtree is rebuilt when one child holds more
    /// than `(1 + α) / 2` of the points (paper: 0.3).
    pub alpha: f64,
    /// Number of sampled points used to approximate the object median.
    pub median_sample: usize,
}

impl Default for PkdConfig {
    fn default() -> Self {
        PkdConfig {
            leaf_cap: 32,
            alpha: 0.3,
            median_sample: 1024,
        }
    }
}

enum Node<T: Coord, const D: usize> {
    Leaf {
        /// SoA coordinate planes (+ bounding box): the leaf scan kernels
        /// (range filter, kNN distance accumulation) run as per-plane
        /// vectorizable loops over this, bit-identical to the old AoS scan.
        points: LeafSoA<T, D>,
    },
    Internal {
        /// Splitting dimension.
        dim: usize,
        /// Splitting coordinate: points with `coord <= split` go left.
        split: T,
        left: Box<Node<T, D>>,
        right: Box<Node<T, D>>,
        size: usize,
        bbox: Rect<T, D>,
    },
}

impl<T: Coord, const D: usize> Node<T, D> {
    fn size(&self) -> usize {
        match self {
            Node::Leaf { points, .. } => points.len(),
            Node::Internal { size, .. } => *size,
        }
    }
    fn bbox(&self) -> &Rect<T, D> {
        match self {
            Node::Leaf { points } => points.bbox(),
            Node::Internal { bbox, .. } => bbox,
        }
    }
    fn height(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { left, right, .. } => 1 + left.height().max(right.height()),
        }
    }
    fn collect_into(&self, out: &mut Vec<Point<T, D>>) {
        match self {
            Node::Leaf { points } => points.collect_into(out),
            Node::Internal { left, right, .. } => {
                left.collect_into(out);
                right.collect_into(out);
            }
        }
    }
}

/// The parallel kd-tree baseline. See the crate docs.
pub struct PkdTree<T: Coord, const D: usize> {
    root: Node<T, D>,
    cfg: PkdConfig,
}

impl<T: Coord, const D: usize> PkdTree<T, D> {
    /// Build a tree with the paper's default parameters.
    pub fn build(points: &[Point<T, D>]) -> Self {
        Self::build_with_config(points, PkdConfig::default())
    }

    /// Build with explicit parameters.
    pub fn build_with_config(points: &[Point<T, D>], cfg: PkdConfig) -> Self {
        let mut buf = points.to_vec();
        let root = build_rec(&mut buf, &cfg, 0);
        PkdTree { root, cfg }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.root.size()
    }

    /// `true` if no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Height of the tree (leaf = 1).
    pub fn height(&self) -> usize {
        self.root.height()
    }

    /// Tight bounding box of all stored points.
    pub fn bounding_box(&self) -> Rect<T, D> {
        *self.root.bbox()
    }

    /// Collect all stored points.
    pub fn collect_points(&self) -> Vec<Point<T, D>> {
        let mut out = Vec::with_capacity(self.len());
        self.root.collect_into(&mut out);
        out
    }

    /// Batch insertion with reconstruction-based rebalancing.
    pub fn batch_insert(&mut self, points: &[Point<T, D>]) {
        if points.is_empty() {
            return;
        }
        let mut buf = points.to_vec();
        let root = std::mem::replace(
            &mut self.root,
            Node::Leaf {
                points: LeafSoA::empty(),
            },
        );
        self.root = insert_rec(root, &mut buf, &self.cfg, 0);
    }

    /// Batch deletion (each element removes at most one matching point);
    /// returns the number removed.
    pub fn batch_delete(&mut self, points: &[Point<T, D>]) -> usize {
        if points.is_empty() {
            return 0;
        }
        let before = self.len();
        let mut buf = points.to_vec();
        let root = std::mem::replace(
            &mut self.root,
            Node::Leaf {
                points: LeafSoA::empty(),
            },
        );
        self.root = delete_rec(root, &mut buf, &self.cfg, 0);
        before - self.len()
    }

    /// The `k` nearest neighbours of `q`, closest first.
    pub fn knn(&self, q: &Point<T, D>, k: usize) -> Vec<Point<T, D>> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut heap = KnnHeap::new(k);
        self.knn_into(q, k, &mut heap);
        heap.into_sorted()
    }

    /// kNN primitive: reset `heap` to capacity `k` (reusing its allocation)
    /// and fill it with the `k` nearest neighbours of `q`. Requires `k >= 1`.
    pub fn knn_into(&self, q: &Point<T, D>, k: usize, heap: &mut KnnHeap<T, D>) {
        heap.reset(k);
        if !self.is_empty() {
            knn_rec(&self.root, q, heap);
        }
    }

    /// Range primitive: call `visitor` on every stored point inside the closed
    /// box, allocating nothing.
    pub fn range_visit(&self, rect: &Rect<T, D>, visitor: &mut dyn FnMut(&Point<T, D>)) {
        range_visit(&self.root, rect, visitor)
    }

    /// Number of stored points in the closed box.
    pub fn range_count(&self, rect: &Rect<T, D>) -> usize {
        range_count(&self.root, rect)
    }

    /// All stored points in the closed box.
    pub fn range_list(&self, rect: &Rect<T, D>) -> Vec<Point<T, D>> {
        let mut out = Vec::new();
        range_list(&self.root, rect, &mut out);
        out
    }

    /// Validate structural invariants (sizes, boxes, split consistency, leaf wrap).
    pub fn check_invariants(&self) {
        check_rec(&self.root, &self.cfg, true);
    }
}

/// Choose the splitting dimension: the one with the widest coordinate spread
/// (the heuristic used by Pkd-tree / STR-style builders).
fn widest_dim<T: Coord, const D: usize>(bbox: &Rect<T, D>) -> usize {
    let mut best = 0;
    let mut best_extent = f64::MIN;
    for d in 0..D {
        let e = bbox.extent(d);
        if e > best_extent {
            best_extent = e;
            best = d;
        }
    }
    best
}

/// Approximate object median of dimension `dim` from an evenly spaced sample.
fn approx_median<T: Coord, const D: usize>(points: &[Point<T, D>], dim: usize, sample: usize) -> T {
    let n = points.len();
    let s = sample.min(n).max(1);
    let mut vals: Vec<T> = (0..s).map(|i| points[i * n / s].coords[dim]).collect();
    vals.sort_by(|a, b| a.total_cmp(b));
    vals[s / 2]
}

fn build_rec<T: Coord, const D: usize>(
    points: &mut [Point<T, D>],
    cfg: &PkdConfig,
    depth: usize,
) -> Node<T, D> {
    let n = points.len();
    if n <= cfg.leaf_cap || depth > 96 {
        return Node::Leaf {
            points: LeafSoA::from_points(points),
        };
    }
    let bbox = Rect::bounding(points);
    let dim = widest_dim(&bbox);
    let split = approx_median(points, dim, cfg.median_sample);

    // Partition: <= split goes left. If the split is degenerate (everything on
    // one side), fall back to a leaf — this only happens when the coordinate
    // values in `dim` are (nearly) all identical.
    let offsets = sieve_by(points, 2, |p| {
        usize::from(p.coords[dim].total_cmp(&split) == std::cmp::Ordering::Greater)
    });
    counters::POINTS_MOVED.add(n as u64);
    let mid = offsets[1];
    if mid == 0 || mid == n {
        let all_same = bbox.extent(0) == 0.0 && (1..D).all(|d| bbox.extent(d) == 0.0);
        if all_same {
            return Node::Leaf {
                points: LeafSoA::from_points(points),
            };
        }
        // Degenerate split (a very skewed value distribution defeated the
        // sample): sort on the dimension and pick the closest value boundary to
        // the median position so both sides are non-empty and the rule
        // "coord <= split goes left" holds exactly.
        points.sort_by(|a, b| a.coords[dim].total_cmp(&b.coords[dim]));
        let target = n / 2;
        let v_mid = points[target].coords[dim];
        let lo =
            points.partition_point(|p| p.coords[dim].total_cmp(&v_mid) == std::cmp::Ordering::Less);
        let hi = points
            .partition_point(|p| p.coords[dim].total_cmp(&v_mid) != std::cmp::Ordering::Greater);
        let (mid, split) = if lo > 0 {
            (lo, points[lo - 1].coords[dim])
        } else {
            debug_assert!(hi < n, "all-equal case is handled above");
            (hi, v_mid)
        };
        let (l, r) = points.split_at_mut(mid);
        let (left, right) = rayon::join(
            || build_rec(l, cfg, depth + 1),
            || build_rec(r, cfg, depth + 1),
        );
        return Node::Internal {
            dim,
            split,
            size: n,
            bbox,
            left: Box::new(left),
            right: Box::new(right),
        };
    }
    let (l, r) = points.split_at_mut(mid);
    let (left, right) = if n > 4096 {
        rayon::join(
            || build_rec(l, cfg, depth + 1),
            || build_rec(r, cfg, depth + 1),
        )
    } else {
        (build_rec(l, cfg, depth + 1), build_rec(r, cfg, depth + 1))
    };
    Node::Internal {
        dim,
        split,
        size: n,
        bbox,
        left: Box::new(left),
        right: Box::new(right),
    }
}

/// Does the child-size pair violate the imbalance factor `α`?
fn unbalanced(lsize: usize, rsize: usize, alpha: f64) -> bool {
    let total = (lsize + rsize) as f64;
    if total < 64.0 {
        return false;
    }
    let limit = (1.0 + alpha) / 2.0 * total;
    (lsize as f64) > limit || (rsize as f64) > limit
}

fn insert_rec<T: Coord, const D: usize>(
    node: Node<T, D>,
    batch: &mut [Point<T, D>],
    cfg: &PkdConfig,
    depth: usize,
) -> Node<T, D> {
    if batch.is_empty() {
        return node;
    }
    match node {
        Node::Leaf { points } => {
            let mut buf = points.to_vec();
            buf.extend_from_slice(batch);
            build_rec(&mut buf, cfg, depth)
        }
        Node::Internal {
            dim,
            split,
            left,
            right,
            size,
            bbox,
        } => {
            let offsets = sieve_by(batch, 2, |p| {
                usize::from(p.coords[dim].total_cmp(&split) == std::cmp::Ordering::Greater)
            });
            counters::POINTS_MOVED.add(batch.len() as u64);
            let (lbatch, rbatch) = batch.split_at_mut(offsets[1]);
            let new_size = size + lbatch.len() + rbatch.len();

            // Reconstruction-based rebalancing: if the insertion would tip the
            // subtree past the imbalance factor, rebuild it wholesale.
            if unbalanced(
                left.size() + lbatch.len(),
                right.size() + rbatch.len(),
                cfg.alpha,
            ) {
                counters::REBALANCES.bump();
                let mut all = Vec::with_capacity(new_size);
                left.collect_into(&mut all);
                right.collect_into(&mut all);
                all.extend_from_slice(lbatch);
                all.extend_from_slice(rbatch);
                return build_rec(&mut all, cfg, depth);
            }

            let (new_left, new_right) = if lbatch.len() + rbatch.len() > 2048 {
                let (l, r) = rayon::join(
                    || insert_rec(*left, lbatch, cfg, depth + 1),
                    || insert_rec(*right, rbatch, cfg, depth + 1),
                );
                (l, r)
            } else {
                (
                    insert_rec(*left, lbatch, cfg, depth + 1),
                    insert_rec(*right, rbatch, cfg, depth + 1),
                )
            };
            let mut new_bbox = bbox;
            new_bbox = new_bbox.merged(new_left.bbox());
            new_bbox = new_bbox.merged(new_right.bbox());
            Node::Internal {
                dim,
                split,
                size: new_size,
                bbox: new_bbox,
                left: Box::new(new_left),
                right: Box::new(new_right),
            }
        }
    }
}

fn delete_rec<T: Coord, const D: usize>(
    node: Node<T, D>,
    batch: &mut [Point<T, D>],
    cfg: &PkdConfig,
    depth: usize,
) -> Node<T, D> {
    if batch.is_empty() {
        return node;
    }
    match node {
        Node::Leaf { points } => {
            let mut pts = points.to_vec();
            remove_multiset(&mut pts, batch);
            Node::Leaf {
                points: LeafSoA::from_points(&pts),
            }
        }
        Node::Internal {
            dim,
            split,
            left,
            right,
            ..
        } => {
            let offsets = sieve_by(batch, 2, |p| {
                usize::from(p.coords[dim].total_cmp(&split) == std::cmp::Ordering::Greater)
            });
            counters::POINTS_MOVED.add(batch.len() as u64);
            let (lbatch, rbatch) = batch.split_at_mut(offsets[1]);
            let (new_left, new_right) = if lbatch.len() + rbatch.len() > 2048 {
                rayon::join(
                    || delete_rec(*left, lbatch, cfg, depth + 1),
                    || delete_rec(*right, rbatch, cfg, depth + 1),
                )
            } else {
                (
                    delete_rec(*left, lbatch, cfg, depth + 1),
                    delete_rec(*right, rbatch, cfg, depth + 1),
                )
            };
            let new_size = new_left.size() + new_right.size();
            // Flatten small subtrees; rebuild unbalanced ones.
            if new_size <= cfg.leaf_cap {
                let mut pts = Vec::with_capacity(new_size);
                new_left.collect_into(&mut pts);
                new_right.collect_into(&mut pts);
                return Node::Leaf {
                    points: LeafSoA::from_points(&pts),
                };
            }
            if unbalanced(new_left.size(), new_right.size(), cfg.alpha) {
                counters::REBALANCES.bump();
                let mut all = Vec::with_capacity(new_size);
                new_left.collect_into(&mut all);
                new_right.collect_into(&mut all);
                return build_rec(&mut all, cfg, depth);
            }
            let bbox = new_left.bbox().merged(new_right.bbox());
            Node::Internal {
                dim,
                split,
                size: new_size,
                bbox,
                left: Box::new(new_left),
                right: Box::new(new_right),
            }
        }
    }
}

fn remove_multiset<T: Coord, const D: usize>(
    stored: &mut Vec<Point<T, D>>,
    to_remove: &mut [Point<T, D>],
) {
    if stored.is_empty() || to_remove.is_empty() {
        return;
    }
    to_remove.sort_by(|a, b| a.lex_cmp(b));
    stored.sort_by(|a, b| a.lex_cmp(b));
    let mut kept = Vec::with_capacity(stored.len());
    let mut j = 0usize;
    for p in stored.iter() {
        while j < to_remove.len() && to_remove[j].lex_cmp(p) == std::cmp::Ordering::Less {
            j += 1;
        }
        if j < to_remove.len() && to_remove[j].lex_cmp(p) == std::cmp::Ordering::Equal {
            j += 1;
        } else {
            kept.push(*p);
        }
    }
    *stored = kept;
}

fn knn_rec<T: Coord, const D: usize>(node: &Node<T, D>, q: &Point<T, D>, heap: &mut KnnHeap<T, D>) {
    counters::NODES_VISITED.bump();
    match node {
        Node::Leaf { points } => points.knn_offer(q, heap),
        Node::Internal { left, right, .. } => {
            let dl = left.bbox().dist_sq_to_point(q);
            let dr = right.bbox().dist_sq_to_point(q);
            let (first, fd, second, sd) = if T::dist_cmp(dl, dr) != std::cmp::Ordering::Greater {
                (left, dl, right, dr)
            } else {
                (right, dr, left, dl)
            };
            if first.size() > 0 && heap.could_improve(fd) {
                knn_rec(first, q, heap);
            }
            if second.size() > 0 && heap.could_improve(sd) {
                knn_rec(second, q, heap);
            }
        }
    }
}

fn range_count<T: Coord, const D: usize>(node: &Node<T, D>, rect: &Rect<T, D>) -> usize {
    counters::NODES_VISITED.bump();
    if node.size() == 0 || !rect.intersects(node.bbox()) {
        return 0;
    }
    if rect.contains_rect(node.bbox()) {
        return node.size();
    }
    match node {
        Node::Leaf { points } => points.range_count(rect),
        Node::Internal { left, right, .. } => range_count(left, rect) + range_count(right, rect),
    }
}

fn range_list<T: Coord, const D: usize>(
    node: &Node<T, D>,
    rect: &Rect<T, D>,
    out: &mut Vec<Point<T, D>>,
) {
    range_visit(node, rect, &mut |p| out.push(*p));
}

fn range_visit<T: Coord, const D: usize>(
    node: &Node<T, D>,
    rect: &Rect<T, D>,
    visitor: &mut dyn FnMut(&Point<T, D>),
) {
    counters::NODES_VISITED.bump();
    if node.size() == 0 || !rect.intersects(node.bbox()) {
        return;
    }
    if rect.contains_rect(node.bbox()) {
        visit_all(node, visitor);
        return;
    }
    match node {
        Node::Leaf { points } => points.range_visit(rect, visitor),
        Node::Internal { left, right, .. } => {
            range_visit(left, rect, visitor);
            range_visit(right, rect, visitor);
        }
    }
}

fn visit_all<T: Coord, const D: usize>(node: &Node<T, D>, visitor: &mut dyn FnMut(&Point<T, D>)) {
    match node {
        Node::Leaf { points } => {
            for p in points.iter() {
                visitor(&p);
            }
        }
        Node::Internal { left, right, .. } => {
            visit_all(left, visitor);
            visit_all(right, visitor);
        }
    }
}

fn check_rec<T: Coord, const D: usize>(node: &Node<T, D>, cfg: &PkdConfig, is_root: bool) {
    match node {
        Node::Leaf { points } => {
            assert_eq!(
                *points.bbox(),
                Rect::bounding(&points.to_vec()),
                "leaf bbox mismatch"
            );
            assert!(
                is_root || !points.is_empty() || points.len() <= cfg.leaf_cap,
                "leaf size invariant"
            );
        }
        Node::Internal {
            dim,
            split,
            left,
            right,
            size,
            bbox,
        } => {
            assert_eq!(left.size() + right.size(), *size, "size mismatch");
            assert!(*size > cfg.leaf_cap || is_root, "small internal node");
            let mut pts = Vec::new();
            left.collect_into(&mut pts);
            for p in &pts {
                assert!(
                    p.coords[*dim].total_cmp(split) != std::cmp::Ordering::Greater,
                    "left subtree violates split"
                );
            }
            let mut rpts = Vec::new();
            right.collect_into(&mut rpts);
            for p in &rpts {
                assert!(
                    p.coords[*dim].total_cmp(split) == std::cmp::Ordering::Greater,
                    "right subtree violates split"
                );
            }
            let union = left.bbox().merged(right.bbox());
            assert_eq!(&union, bbox, "internal bbox mismatch");
            check_rec(left, cfg, false);
            check_rec(right, cfg, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_geometry::{brute_force_knn, PointI};
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    fn random_points(n: usize, seed: u64, max: i64) -> Vec<PointI<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.gen_range(0..max), rng.gen_range(0..max)]))
            .collect()
    }

    #[test]
    fn build_empty_single_and_duplicates() {
        let t = PkdTree::<i64, 2>::build(&[]);
        assert!(t.is_empty());
        t.check_invariants();

        let p = PointI::<2>::new([3, 4]);
        let t = PkdTree::build(&[p]);
        assert_eq!(t.len(), 1);
        t.check_invariants();

        let t = PkdTree::build(&vec![p; 300]);
        assert_eq!(t.len(), 300);
        t.check_invariants();
    }

    #[test]
    fn knn_matches_oracle() {
        let pts = random_points(5_000, 1, 1_000_000);
        let t = PkdTree::build(&pts);
        t.check_invariants();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..40 {
            let q = Point::new([rng.gen_range(0..1_000_000), rng.gen_range(0..1_000_000)]);
            assert_eq!(
                t.knn(&q, 10)
                    .iter()
                    .map(|p| q.dist_sq(p))
                    .collect::<Vec<_>>(),
                brute_force_knn(&pts, &q, 10)
                    .iter()
                    .map(|p| q.dist_sq(p))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn range_matches_scan() {
        let pts = random_points(3_000, 3, 50_000);
        let t = PkdTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..40 {
            let a = Point::new([rng.gen_range(0..50_000), rng.gen_range(0..50_000)]);
            let b = Point::new([rng.gen_range(0..50_000), rng.gen_range(0..50_000)]);
            let rect = Rect::new(a, b);
            let expect = pts.iter().filter(|p| rect.contains(p)).count();
            assert_eq!(t.range_count(&rect), expect);
            assert_eq!(t.range_list(&rect).len(), expect);
        }
    }

    #[test]
    fn insert_and_delete_roundtrip() {
        let all = random_points(6_000, 5, 1_000_000);
        let (a, b) = all.split_at(3_000);
        let mut t = PkdTree::build(a);
        for chunk in b.chunks(500) {
            t.batch_insert(chunk);
            t.check_invariants();
        }
        assert_eq!(t.len(), all.len());
        let mut got = t.collect_points();
        let mut want = all.clone();
        got.sort();
        want.sort();
        assert_eq!(got, want);

        let removed = t.batch_delete(&all[..4_000]);
        assert_eq!(removed, 4_000);
        t.check_invariants();
        assert_eq!(t.len(), 2_000);
    }

    #[test]
    fn skewed_sweepline_inserts_stay_balanced() {
        // Sorted insertion order is the adversarial case for reconstruction-
        // based balancing; the tree must stay within O(log n) height.
        let mut pts = random_points(8_000, 6, 1_000_000);
        pts.sort_by_key(|p| p.coords[0]);
        let mut t = PkdTree::build(&pts[..1_000]);
        for chunk in pts[1_000..].chunks(500) {
            t.batch_insert(chunk);
        }
        t.check_invariants();
        let n = t.len() as f64;
        assert!(
            (t.height() as f64) < 4.0 * n.log2() + 8.0,
            "height {} too large",
            t.height()
        );
        // Queries still correct after the skewed insertion history.
        let q = Point::new([500_000, 500_000]);
        assert_eq!(
            t.knn(&q, 5)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>(),
            brute_force_knn(&pts, &q, 5)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn three_d_build_and_query() {
        let mut rng = StdRng::seed_from_u64(7);
        let pts: Vec<PointI<3>> = (0..3_000)
            .map(|_| {
                Point::new([
                    rng.gen_range(0..100_000),
                    rng.gen_range(0..100_000),
                    rng.gen_range(0..100_000),
                ])
            })
            .collect();
        let t = PkdTree::build(&pts);
        t.check_invariants();
        let q = Point::new([50_000, 50_000, 50_000]);
        assert_eq!(
            t.knn(&q, 7)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>(),
            brute_force_knn(&pts, &q, 7)
                .iter()
                .map(|p| q.dist_sq(p))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn delete_absent_is_noop() {
        let pts = random_points(1_000, 8, 1_000);
        let mut t = PkdTree::build(&pts);
        let absent = vec![PointI::<2>::new([5_000_000, 5_000_000])];
        assert_eq!(t.batch_delete(&absent), 0);
        assert_eq!(t.len(), 1_000);
    }
}
