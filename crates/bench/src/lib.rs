//! Shared harness for the figure-reproduction binaries.
//!
//! Every table and figure of the paper's evaluation section has a binary in
//! `src/bin/` (figure3 … figure10) that regenerates it at a configurable,
//! laptop-friendly scale. This library holds the pieces they share: the
//! command-line configuration, the per-index experiment runners built on top
//! of [`psi::driver`], and plain-text table rendering.
//!
//! The binaries print the same *rows and columns* the paper reports; absolute
//! numbers will differ from the paper's 112-core machine (see EXPERIMENTS.md),
//! but the relative ordering of the indexes is what the harness is for.

use psi::driver::{self, QuerySet, QueryTimes};
use psi::{PointI, RectI, SpatialIndex};
use psi_workloads as workloads;
use std::time::Duration;

/// Scale and workload parameters shared by the figure binaries.
///
/// Every binary accepts `--n <points>`, `--queries <count>`, `--ranges <count>`
/// and `--seed <seed>`; unrecognised arguments are ignored so the binaries can
/// be invoked uniformly from scripts.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Number of data points (the paper uses 10⁹; the default here is 2·10⁵).
    pub n: usize,
    /// Number of kNN query points per category (paper: 10⁷).
    pub knn_queries: usize,
    /// Number of range queries (paper: 5·10⁴).
    pub range_queries: usize,
    /// Neighbours per kNN query.
    pub k: usize,
    /// Incremental-update batch ratios (fraction of `n` per batch).
    pub batch_ratios: Vec<f64>,
    /// Coordinate domain upper bound.
    pub max_coord: i64,
    /// RNG seed.
    pub seed: u64,
}

impl BenchConfig {
    /// Defaults for 2-D experiments (Fig. 3, 4, 5, 7, 8, 10).
    pub fn default_2d() -> Self {
        BenchConfig {
            n: 200_000,
            knn_queries: 2_000,
            range_queries: 200,
            k: 10,
            batch_ratios: vec![0.10, 0.01, 0.001, 0.0001],
            max_coord: workloads::DEFAULT_MAX_COORD_2D,
            seed: 42,
        }
    }

    /// Defaults for 3-D experiments (Fig. 6 cosmo, Fig. 9).
    pub fn default_3d() -> Self {
        BenchConfig {
            max_coord: workloads::DEFAULT_MAX_COORD_3D,
            n: 100_000,
            ..Self::default_2d()
        }
    }

    /// Parse overrides from the process arguments.
    pub fn from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() {
            match args[i].as_str() {
                "--n" => self.n = args[i + 1].parse().expect("--n expects an integer"),
                "--queries" => {
                    self.knn_queries = args[i + 1].parse().expect("--queries expects an integer")
                }
                "--ranges" => {
                    self.range_queries = args[i + 1].parse().expect("--ranges expects an integer")
                }
                "--k" => self.k = args[i + 1].parse().expect("--k expects an integer"),
                "--seed" => self.seed = args[i + 1].parse().expect("--seed expects an integer"),
                "--max-coord" => {
                    self.max_coord = args[i + 1].parse().expect("--max-coord expects an integer")
                }
                _ => {
                    i += 1;
                    continue;
                }
            }
            i += 2;
        }
        self
    }

    /// The root region for this configuration.
    pub fn universe<const D: usize>(&self) -> RectI<D> {
        workloads::universe::<D>(self.max_coord)
    }

    /// Build the Fig. 3 query set for a dataset.
    pub fn query_set<const D: usize>(&self, data: &[PointI<D>]) -> QuerySet<i64, D> {
        QuerySet {
            knn_ind: workloads::ind_queries(data, self.knn_queries, self.seed ^ 0x51),
            knn_ood: workloads::ood_queries::<D>(
                self.max_coord,
                self.knn_queries,
                self.seed ^ 0x52,
            ),
            k: self.k,
            ranges: workloads::range_queries(
                data,
                self.max_coord,
                (data.len() / 100).max(10),
                self.range_queries,
                self.seed ^ 0x53,
            ),
        }
    }
}

/// Duration formatted in seconds with millisecond resolution.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Strip a free-text host string down to safe JSON-literal characters.
fn sanitize(s: &str) -> String {
    s.trim()
        .chars()
        .filter(|c| c.is_ascii_graphic() || *c == ' ')
        .filter(|c| !matches!(c, '"' | '\\'))
        .collect()
}

fn proc_line(path: &str, key: &str) -> Option<String> {
    std::fs::read_to_string(path).ok()?.lines().find_map(|l| {
        let (k, v) = l.split_once(':')?;
        (k.trim() == key).then(|| v.trim().to_string())
    })
}

/// The `"machine_threads": N, "host": {...}` JSON fields that every
/// `BENCH_*.json` writer embeds at the top level, so a checked-in benchmark
/// file records what machine produced it. `machine_threads` is the worker
/// pool the run actually used (it honours `RAYON_NUM_THREADS`); the `host`
/// block is the physical box. Indented for a 2-space top-level object.
pub fn host_meta_json() -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let kernel = std::fs::read_to_string("/proc/sys/kernel/osrelease")
        .map_or_else(|_| "unknown".to_string(), |s| sanitize(&s));
    let cpu_model = proc_line("/proc/cpuinfo", "model name")
        .map_or_else(|| "unknown".to_string(), |s| sanitize(&s));
    format!(
        "\"machine_threads\": {},\n  \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \
         \"cpus\": {}, \"kernel\": \"{}\", \"cpu_model\": \"{}\"}}",
        rayon::current_num_threads(),
        std::env::consts::OS,
        std::env::consts::ARCH,
        cpus,
        kernel,
        cpu_model,
    )
}

/// One row of the Fig. 3 / Fig. 9 master table.
#[derive(Clone, Debug, Default)]
pub struct MasterRow {
    /// Index name.
    pub name: String,
    /// One-shot build time over the full dataset.
    pub build: Duration,
    /// Queries after building a tree over half of the data (the static case).
    pub q_build: QueryTimes,
    /// Incremental-insert total times, one per batch ratio.
    pub inc_insert: Vec<Duration>,
    /// Queries sampled after 50% of the insertion batches (smallest ratio run).
    pub q_insert: QueryTimes,
    /// Incremental-delete total times, one per batch ratio.
    pub inc_delete: Vec<Duration>,
    /// Queries sampled after 50% of the deletion batches (smallest ratio run).
    pub q_delete: QueryTimes,
}

/// Run the full Fig. 3 protocol for one index type on one dataset.
pub fn master_row<I: SpatialIndex<i64, D>, const D: usize>(
    data: &[PointI<D>],
    cfg: &BenchConfig,
) -> MasterRow {
    let universe = cfg.universe::<D>();
    let queries = cfg.query_set(data);
    let mut row = MasterRow {
        name: I::NAME.to_string(),
        ..Default::default()
    };

    // Static build over the full data.
    let (build_time, _index) = driver::timed_build::<I, i64, D>(data, &universe);
    row.build = build_time;

    // Static query baseline: tree over the first half of the data.
    let half = data.len() / 2;
    let (_t, half_index) = driver::timed_build::<I, i64, D>(&data[..half], &universe);
    row.q_build = queries.run(&half_index);
    drop(half_index);

    // Incremental insertion at each batch ratio; query probe on the last
    // (smallest) ratio, matching the paper's "query after inc. ins." column.
    for (i, ratio) in cfg.batch_ratios.iter().enumerate() {
        let batch = ((data.len() as f64 * ratio).ceil() as usize).max(1);
        let probe = if i + 1 == cfg.batch_ratios.len() {
            Some(&queries)
        } else {
            None
        };
        let (res, _index) = driver::incremental_insert::<I, i64, D>(data, batch, &universe, probe);
        row.inc_insert.push(res.update_time);
        if let Some(q) = res.queries_at_half {
            row.q_insert = q;
        }
    }

    // Incremental deletion at each batch ratio.
    for (i, ratio) in cfg.batch_ratios.iter().enumerate() {
        let batch = ((data.len() as f64 * ratio).ceil() as usize).max(1);
        let probe = if i + 1 == cfg.batch_ratios.len() {
            Some(&queries)
        } else {
            None
        };
        let (res, _index) = driver::incremental_delete::<I, i64, D>(data, batch, &universe, probe);
        row.inc_delete.push(res.update_time);
        if let Some(q) = res.queries_at_half {
            row.q_delete = q;
        }
    }
    row
}

/// Render the header of the master table.
pub fn master_header(ratios: &[f64]) -> String {
    let ratio_cols: Vec<String> = ratios
        .iter()
        .map(|r| format!("{:>8}", format!("{}%", r * 100.0)))
        .collect();
    format!(
        "{:<10} {:>8} | {:>8} {:>8} {:>8} {:>8} | {} | {:>8} {:>8} {:>8} {:>8} | {} | {:>8} {:>8} {:>8} {:>8}",
        "index", "build",
        "10NN-InD", "10NN-OOD", "rangeCnt", "rangeLst",
        ratio_cols.join(" "),
        "10NN-InD", "10NN-OOD", "rangeCnt", "rangeLst",
        ratio_cols.join(" "),
        "10NN-InD", "10NN-OOD", "rangeCnt", "rangeLst",
    )
}

/// Render one master-table row.
pub fn master_row_line(row: &MasterRow) -> String {
    let q = |t: &QueryTimes| {
        format!(
            "{:>8} {:>8} {:>8} {:>8}",
            fmt_secs(t.knn_ind),
            fmt_secs(t.knn_ood),
            fmt_secs(t.range_count),
            fmt_secs(t.range_list)
        )
    };
    let durs = |v: &[Duration]| {
        v.iter()
            .map(|d| format!("{:>8}", fmt_secs(*d)))
            .collect::<Vec<_>>()
            .join(" ")
    };
    format!(
        "{:<10} {:>8} | {} | {} | {} | {} | {}",
        row.name,
        fmt_secs(row.build),
        q(&row.q_build),
        durs(&row.inc_insert),
        q(&row.q_insert),
        durs(&row.inc_delete),
        q(&row.q_delete),
    )
}

/// The geometric mean of a set of durations (used by the Fig. 8 scatter).
pub fn geometric_mean(durations: &[Duration]) -> f64 {
    if durations.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = durations
        .iter()
        .map(|d| d.as_secs_f64().max(1e-9).ln())
        .sum();
    (log_sum / durations.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi::POrthTree2;

    #[test]
    fn config_defaults_and_universe() {
        let cfg = BenchConfig::default_2d();
        assert_eq!(cfg.batch_ratios.len(), 4);
        let u = cfg.universe::<2>();
        assert!(u.contains(&psi::Point::new([0, 0])));
        assert!(u.contains(&psi::Point::new([cfg.max_coord, cfg.max_coord])));
    }

    #[test]
    fn host_meta_is_valid_json_fields() {
        let meta = host_meta_json();
        assert!(meta.starts_with("\"machine_threads\": "));
        assert!(meta.contains("\"host\": {"));
        assert!(meta.contains("\"cpus\": "));
        // The fragment must compose into a parseable object: balanced
        // braces, no stray quotes from /proc free text.
        let obj = format!("{{{meta}}}");
        assert_eq!(obj.matches('{').count(), obj.matches('}').count());
        assert_eq!(obj.matches('"').count() % 2, 0);
        assert_eq!(sanitize("  weird\\\"cpu\u{7f}  "), "weirdcpu");
    }

    #[test]
    fn geometric_mean_of_equal_durations() {
        let d = vec![Duration::from_millis(100); 4];
        let g = geometric_mean(&d);
        assert!((g - 0.1).abs() < 1e-6);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn master_row_small_run_completes() {
        let cfg = BenchConfig {
            n: 3_000,
            knn_queries: 50,
            range_queries: 20,
            k: 5,
            batch_ratios: vec![0.1, 0.01],
            max_coord: 100_000,
            seed: 1,
        };
        let data = workloads::uniform::<2>(cfg.n, cfg.max_coord, cfg.seed);
        let row = master_row::<POrthTree2, 2>(&data, &cfg);
        assert_eq!(row.name, "P-Orth");
        assert_eq!(row.inc_insert.len(), 2);
        assert_eq!(row.inc_delete.len(), 2);
        assert!(row.q_insert.checksum > 0);
        // The rendered line contains the index name and parses as one row.
        let line = master_row_line(&row);
        assert!(line.starts_with("P-Orth"));
        assert!(!master_header(&cfg.batch_ratios).is_empty());
    }
}
