//! Parallel throughput sweep — batch queries (PR 2) **and** index
//! construction (PR 4, the pool-native fork-join executor).
//!
//! For every index family in the runtime registry, this binary
//!
//! 1. runs `knn_batch` and `range_count_batch` under rayon pools of 1, 2, 4
//!    and `current_num_threads()` workers and writes the per-family
//!    throughput table to `BENCH_parallel.json` (see `--out`), and
//! 2. runs the family's full **construction** (`registry::create`, i.e.
//!    `build_with` under the hood — the deep fork-join recursions the
//!    task-deque executor exists for) under the same thread counts and
//!    writes `BENCH_build.json` (see `--build-out`).
//!
//! Every thread count must produce **bit-identical** query answers to the
//! single-thread run — for the construction sweep the built index is probed
//! and its answers compared, so a scheduling-dependent build would fail the
//! binary, not just skew a number. Thread counts above the machine's core
//! count still run (the shim pool oversubscribes, as upstream rayon does)
//! but cannot show real speedup.
//!
//! Usage:
//! `cargo run --release -p psi-bench --bin bench_parallel [-- --n 200000 --queries 20000 --ranges 2000 --reps 3 --out BENCH_parallel.json --build-out BENCH_build.json]`

use psi::registry::{self, BuildOptions, DynIndex};
use psi_bench::BenchConfig;
use psi_workloads as workloads;
use std::time::Instant;

/// One measured operating point.
struct Sample {
    threads: usize,
    secs: f64,
    qps: f64,
}

fn with_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool")
        .install(f)
}

fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4, rayon::current_num_threads().max(1)];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Best-of-`reps` wall-clock of `op`, with one untimed warmup.
fn time_best<R>(reps: usize, mut op: impl FnMut() -> R) -> (f64, R) {
    let mut result = op();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        result = op();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, result)
}

fn json_samples(samples: &[Sample]) -> String {
    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "{{\"threads\": {}, \"secs\": {:.6}, \"qps\": {:.1}}}",
                s.threads, s.secs, s.qps
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

fn speedup(samples: &[Sample]) -> f64 {
    let t1 = samples
        .iter()
        .find(|s| s.threads == 1)
        .map_or(0.0, |s| s.qps);
    let best = samples.iter().map(|s| s.qps).fold(0.0f64, f64::max);
    if t1 > 0.0 {
        best / t1
    } else {
        0.0
    }
}

fn parse_extra_args() -> (usize, String, String) {
    let args: Vec<String> = std::env::args().collect();
    let mut reps = 3usize;
    let mut out = "BENCH_parallel.json".to_string();
    let mut build_out = "BENCH_build.json".to_string();
    let mut i = 1;
    while i + 1 < args.len() {
        match args[i].as_str() {
            "--reps" => reps = args[i + 1].parse().expect("--reps expects an integer"),
            "--out" => out = args[i + 1].clone(),
            "--build-out" => build_out = args[i + 1].clone(),
            _ => {
                i += 1;
                continue;
            }
        }
        i += 2;
    }
    (reps, out, build_out)
}

fn main() {
    let cfg = BenchConfig {
        knn_queries: 20_000,
        range_queries: 2_000,
        ..BenchConfig::default_2d()
    }
    .from_args();
    let (reps, out_path, build_out_path) = parse_extra_args();

    let data = workloads::uniform::<2>(cfg.n, cfg.max_coord, cfg.seed);
    let qs = cfg.query_set(&data);
    let opts = BuildOptions::<i64, 2>::with_universe(cfg.universe::<2>());
    let counts = thread_counts();

    println!(
        "# bench_parallel: n = {}, knn queries = {} (k = {}), range queries = {}, threads = {:?} (machine: {})",
        cfg.n,
        qs.knn_ind.len(),
        cfg.k,
        qs.ranges.len(),
        counts,
        rayon::current_num_threads()
    );

    let mut family_blocks: Vec<String> = Vec::new();
    for &name in registry::names() {
        let index: Box<dyn DynIndex<i64, 2>> =
            registry::create::<2>(name, &data, &opts).expect("registry families all build");

        let mut knn_samples: Vec<Sample> = Vec::new();
        let mut range_samples: Vec<Sample> = Vec::new();
        let mut knn_reference = None;
        let mut range_reference = None;
        let mut identical = true;

        for &t in &counts {
            let (knn_secs, knn_out) = with_pool(t, || {
                time_best(reps, || index.knn_batch(&qs.knn_ind, cfg.k))
            });
            let (range_secs, range_out) = with_pool(t, || {
                time_best(reps, || index.range_count_batch(&qs.ranges))
            });
            match &knn_reference {
                None => knn_reference = Some(knn_out),
                Some(r) => identical &= *r == knn_out,
            }
            match &range_reference {
                None => range_reference = Some(range_out),
                Some(r) => identical &= *r == range_out,
            }
            knn_samples.push(Sample {
                threads: t,
                secs: knn_secs,
                qps: qs.knn_ind.len() as f64 / knn_secs,
            });
            range_samples.push(Sample {
                threads: t,
                secs: range_secs,
                qps: qs.ranges.len() as f64 / range_secs,
            });
            println!(
                "{:<12} threads={:<3} knn_batch={:>9.4}s ({:>10.0} q/s)  range_count_batch={:>9.4}s ({:>10.0} q/s)",
                name,
                t,
                knn_secs,
                qs.knn_ind.len() as f64 / knn_secs,
                range_secs,
                qs.ranges.len() as f64 / range_secs,
            );
        }
        assert!(
            identical,
            "{name}: parallel results must be bit-identical to single-thread"
        );
        family_blocks.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"knn_batch\": {},\n      \"range_count_batch\": {},\n      \"speedup_knn_best_vs_1\": {:.2},\n      \"speedup_range_best_vs_1\": {:.2},\n      \"identical_to_sequential\": true\n    }}",
            name,
            json_samples(&knn_samples),
            json_samples(&range_samples),
            speedup(&knn_samples),
            speedup(&range_samples),
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"parallel_batch_queries\",\n  {},\n  \"n\": {},\n  \"knn_queries\": {},\n  \"k\": {},\n  \"range_queries\": {},\n  \"reps\": {},\n  \"note\": \"best-of-reps wall clock; qps = queries per second; thread counts above machine_threads oversubscribe and cannot speed up\",\n  \"indexes\": [\n{}\n  ]\n}}\n",
        psi_bench::host_meta_json(),
        cfg.n,
        qs.knn_ind.len(),
        cfg.k,
        qs.ranges.len(),
        reps,
        family_blocks.join(",\n")
    );
    std::fs::write(&out_path, json).expect("failed to write benchmark output");
    println!("# wrote {out_path}");

    // ---------------------------------------------------------------------
    // Construction sweep: full `build_with` per family per thread count —
    // the deep fork-join recursions the task-deque executor accelerates.
    // ---------------------------------------------------------------------
    let probe_queries = &qs.knn_ind[..qs.knn_ind.len().min(1_000)];
    let mut build_blocks: Vec<String> = Vec::new();
    for &name in registry::names() {
        let mut samples: Vec<Sample> = Vec::new();
        let mut reference = None;
        let mut identical = true;
        for &t in &counts {
            let (secs, index) = with_pool(t, || {
                time_best(reps, || {
                    registry::create::<2>(name, &data, &opts).expect("registry families all build")
                })
            });
            // A build must be deterministic across thread counts: probe the
            // built structure and require identical answers.
            let probe = index.knn_batch(probe_queries, cfg.k);
            match &reference {
                None => reference = Some(probe),
                Some(r) => identical &= *r == probe,
            }
            samples.push(Sample {
                threads: t,
                secs,
                qps: cfg.n as f64 / secs,
            });
            println!(
                "{:<12} threads={:<3} build={:>9.4}s ({:>12.0} points/s)",
                name,
                t,
                secs,
                cfg.n as f64 / secs,
            );
        }
        assert!(
            identical,
            "{name}: builds must answer identically across thread counts"
        );
        build_blocks.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"build\": {},\n      \"speedup_build_best_vs_1\": {:.2},\n      \"identical_across_threads\": true\n    }}",
            name,
            json_samples(&samples),
            speedup(&samples),
        ));
    }

    let build_json = format!(
        "{{\n  \"bench\": \"parallel_construction\",\n  {},\n  \"n\": {},\n  \"reps\": {},\n  \"note\": \"best-of-reps wall clock of registry::create (full build_with); qps = points indexed per second; thread counts above machine_threads oversubscribe and cannot speed up\",\n  \"indexes\": [\n{}\n  ]\n}}\n",
        psi_bench::host_meta_json(),
        cfg.n,
        reps,
        build_blocks.join(",\n")
    );
    std::fs::write(&build_out_path, build_json).expect("failed to write build benchmark output");
    println!("# wrote {build_out_path}");
}
