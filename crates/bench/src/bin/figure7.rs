//! Figure 7 — scalability: self-relative speedup of construction, batch
//! insertion and batch deletion as the number of worker threads grows.
//!
//! The paper sweeps 1 → 224 hyperthreads on a 112-core machine; this binary
//! sweeps 1 → the number of cores available (doubling), running each operation
//! inside a dedicated rayon pool of that size, and reports speedup relative to
//! the 1-thread run of the same index (the paper normalises to SPaC-H's
//! 1-thread time; both normalisations are printed).
//!
//! Usage: `cargo run --release -p psi-bench --bin figure7 [-- --n 200000]`

use psi::{POrthTree2, PkdTree, PointI, SpacHTree, SpacZTree, SpatialIndex, ZdTree};
use psi_bench::BenchConfig;
use psi_workloads::{self as workloads, Distribution};
use std::time::{Duration, Instant};

/// Run `f` inside a rayon pool with `threads` workers.
fn with_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool")
        .install(f)
}

struct Timings {
    build: Duration,
    insert: Duration,
    delete: Duration,
}

fn measure<I: SpatialIndex<i64, 2>>(
    data: &[PointI<2>],
    batch: &[PointI<2>],
    cfg: &BenchConfig,
    threads: usize,
) -> Timings {
    let universe = cfg.universe::<2>();
    with_pool(threads, || {
        let t0 = Instant::now();
        let mut index = I::build(data, &universe);
        let build = t0.elapsed();
        let t1 = Instant::now();
        index.batch_insert(batch);
        let insert = t1.elapsed();
        let t2 = Instant::now();
        index.batch_delete(batch);
        let delete = t2.elapsed();
        Timings {
            build,
            insert,
            delete,
        }
    })
}

fn thread_counts() -> Vec<usize> {
    let max = rayon::current_num_threads().max(1);
    let mut v = vec![1usize];
    let mut t = 2;
    while t < max {
        v.push(t);
        t *= 2;
    }
    if *v.last().unwrap() != max {
        v.push(max);
    }
    v
}

fn sweep<I: SpatialIndex<i64, 2>>(
    name: &str,
    data: &[PointI<2>],
    batch: &[PointI<2>],
    cfg: &BenchConfig,
) {
    let counts = thread_counts();
    let base = measure::<I>(data, batch, cfg, 1);
    for &t in &counts {
        let m = if t == 1 {
            Timings {
                build: base.build,
                insert: base.insert,
                delete: base.delete,
            }
        } else {
            measure::<I>(data, batch, cfg, t)
        };
        println!(
            "{:<10} threads={:<3} build={:>8.4}s (x{:>5.2}) insert={:>8.4}s (x{:>5.2}) delete={:>8.4}s (x{:>5.2})",
            name,
            t,
            m.build.as_secs_f64(),
            base.build.as_secs_f64() / m.build.as_secs_f64().max(1e-9),
            m.insert.as_secs_f64(),
            base.insert.as_secs_f64() / m.insert.as_secs_f64().max(1e-9),
            m.delete.as_secs_f64(),
            base.delete.as_secs_f64() / m.delete.as_secs_f64().max(1e-9),
        );
    }
}

fn main() {
    let cfg = BenchConfig::default_2d().from_args();
    println!(
        "# Figure 7: scalability sweep (n = {}, batch = 1% of n, threads up to {})",
        cfg.n,
        rayon::current_num_threads()
    );
    for dist in Distribution::SYNTHETIC {
        println!("\n== {} ==", dist.name());
        let data = dist.generate::<2>(cfg.n, cfg.max_coord, cfg.seed);
        let batch = workloads::uniform::<2>(cfg.n / 100, cfg.max_coord, cfg.seed ^ 0x91);
        sweep::<SpacHTree<2>>("SPaC-H", &data, &batch, &cfg);
        sweep::<SpacZTree<2>>("SPaC-Z", &data, &batch, &cfg);
        sweep::<POrthTree2>("P-Orth", &data, &batch, &cfg);
        sweep::<ZdTree<2>>("Zd-Tree", &data, &batch, &cfg);
        sweep::<PkdTree<2>>("Pkd-Tree", &data, &batch, &cfg);
    }
}
