//! Figure 3 — the 2-D synthetic master table.
//!
//! For each distribution (Uniform, Sweepline, Varden) and each index, report:
//! build time; 10-NN (InD/OOD), range-count and range-list after a static
//! build over half the data; incremental-insertion total time at batch ratios
//! 10%, 1%, 0.1%, 0.01%; queries after 50% of the insertion batches;
//! incremental-deletion totals at the same ratios; queries after 50% of the
//! deletion batches.
//!
//! Usage: `cargo run --release -p psi-bench --bin figure3 [-- --n 200000]`

use psi::{CpamHTree, CpamZTree, POrthTree2, PkdTree, RTree, SpacHTree, SpacZTree, ZdTree};
use psi_bench::{master_header, master_row, master_row_line, BenchConfig};
use psi_workloads::Distribution;

fn main() {
    let cfg = BenchConfig::default_2d().from_args();
    println!(
        "# Figure 3: 2-D synthetic master table (n = {}, seed = {})",
        cfg.n, cfg.seed
    );
    println!("# times in seconds; paper reference: Fig. 3 of arXiv:2601.05347");

    for dist in Distribution::SYNTHETIC {
        let data = dist.generate::<2>(cfg.n, cfg.max_coord, cfg.seed);
        println!("\n== {} ==", dist.name());
        println!("{}", master_header(&cfg.batch_ratios));
        println!(
            "{}",
            master_row_line(&master_row::<POrthTree2, 2>(&data, &cfg))
        );
        println!(
            "{}",
            master_row_line(&with_name(
                master_row::<ZdTree<2>, 2>(&data, &cfg),
                "Zd-Tree"
            ))
        );
        println!(
            "{}",
            master_row_line(&with_name(
                master_row::<SpacHTree<2>, 2>(&data, &cfg),
                "SPaC-H"
            ))
        );
        println!(
            "{}",
            master_row_line(&with_name(
                master_row::<SpacZTree<2>, 2>(&data, &cfg),
                "SPaC-Z"
            ))
        );
        println!(
            "{}",
            master_row_line(&with_name(
                master_row::<CpamHTree<2>, 2>(&data, &cfg),
                "CPAM-H"
            ))
        );
        println!(
            "{}",
            master_row_line(&with_name(
                master_row::<CpamZTree<2>, 2>(&data, &cfg),
                "CPAM-Z"
            ))
        );
        println!(
            "{}",
            master_row_line(&with_name(
                master_row::<RTree<2>, 2>(&data, &cfg),
                "Boost-R"
            ))
        );
        println!(
            "{}",
            master_row_line(&with_name(
                master_row::<PkdTree<2>, 2>(&data, &cfg),
                "Pkd-Tree"
            ))
        );
    }
}

fn with_name(mut row: psi_bench::MasterRow, name: &str) -> psi_bench::MasterRow {
    row.name = name.to_string();
    row
}
