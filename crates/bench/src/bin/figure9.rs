//! Figure 9 — the 3-D synthetic master table (same protocol as Fig. 3, on
//! 3-D points with coordinates in [0, 10^6], restricted to the indexes the
//! paper keeps for this experiment: P-Orth, SPaC-H and Pkd-tree).
//!
//! Usage: `cargo run --release -p psi-bench --bin figure9 [-- --n 100000]`

use psi::{POrthTree, PkdTree, SpacHTree};
use psi_bench::{master_header, master_row, master_row_line, BenchConfig};
use psi_workloads::Distribution;

fn main() {
    let cfg = BenchConfig::default_3d().from_args();
    println!(
        "# Figure 9: 3-D synthetic master table (n = {}, coords in [0, {}])",
        cfg.n, cfg.max_coord
    );

    for dist in Distribution::SYNTHETIC {
        let data = dist.generate::<3>(cfg.n, cfg.max_coord, cfg.seed);
        println!("\n== {} ==", dist.name());
        println!("{}", master_header(&cfg.batch_ratios));
        let mut porth = master_row::<POrthTree<3>, 3>(&data, &cfg);
        porth.name = "P-Orth".into();
        println!("{}", master_row_line(&porth));
        let mut spac = master_row::<SpacHTree<3>, 3>(&data, &cfg);
        spac.name = "SPaC-H".into();
        println!("{}", master_row_line(&spac));
        let mut pkd = master_row::<PkdTree<3>, 3>(&data, &cfg);
        pkd.name = "Pkd-Tree".into();
        println!("{}", master_row_line(&pkd));
    }
}
