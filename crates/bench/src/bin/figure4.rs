//! Figure 4 — kNN query time as a function of `k` (1, 10, 100), for
//! in-distribution and out-of-distribution query points, on a tree built by
//! incremental insertion with 0.01% batches.
//!
//! Usage: `cargo run --release -p psi-bench --bin figure4 [-- --n 100000]`

use psi::driver::{incremental_insert, QuerySet};
use psi::{
    CpamHTree, CpamZTree, POrthTree2, PkdTree, PointI, RTree, SpacHTree, SpacZTree, SpatialIndex,
    ZdTree,
};
use psi_bench::{fmt_secs, BenchConfig};
use psi_workloads::{self as workloads, Distribution};

fn run<I: SpatialIndex<i64, 2>>(name: &str, data: &[PointI<2>], cfg: &BenchConfig) {
    let universe = cfg.universe::<2>();
    let batch = ((data.len() as f64 * 0.0001).ceil() as usize).max(1);
    let (_res, index) = incremental_insert::<I, i64, 2>(data, batch, &universe, None);
    for k in [1usize, 10, 100] {
        let qs = QuerySet {
            knn_ind: workloads::ind_queries(data, cfg.knn_queries, cfg.seed ^ 0x61),
            knn_ood: workloads::ood_queries::<2>(cfg.max_coord, cfg.knn_queries, cfg.seed ^ 0x62),
            k,
            ranges: vec![],
        };
        let t = qs.run(&index);
        println!(
            "{:<10} k={:<4} InD={:>9}  OOD={:>9}",
            name,
            k,
            fmt_secs(t.knn_ind),
            fmt_secs(t.knn_ood)
        );
    }
}

fn main() {
    let cfg = BenchConfig::default_2d().from_args();
    println!(
        "# Figure 4: kNN time vs k (n = {}, {} queries per point set)",
        cfg.n, cfg.knn_queries
    );
    for dist in Distribution::SYNTHETIC {
        println!("\n== {} ==", dist.name());
        let data = dist.generate::<2>(cfg.n, cfg.max_coord, cfg.seed);
        run::<POrthTree2>("P-Orth", &data, &cfg);
        run::<ZdTree<2>>("Zd-Tree", &data, &cfg);
        run::<SpacHTree<2>>("SPaC-H", &data, &cfg);
        run::<SpacZTree<2>>("SPaC-Z", &data, &cfg);
        run::<CpamHTree<2>>("CPAM-H", &data, &cfg);
        run::<CpamZTree<2>>("CPAM-Z", &data, &cfg);
        run::<RTree<2>>("Boost-R", &data, &cfg);
        run::<PkdTree<2>>("Pkd-Tree", &data, &cfg);
    }
}
