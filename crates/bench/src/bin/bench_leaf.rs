//! Leaf-scan microbenchmark — AoS vs SoA (PR 7).
//!
//! Times the three leaf kernels every query in the workspace bottoms out in —
//! range-count, range-filter-into-arena, and kNN distance accumulation — over
//! the same point sets in both layouts:
//!
//! * **AoS**: `Vec<Point<T, D>>` + the reference kernels the indexes used
//!   before PR 7 (`aos_range_count` / `aos_range_visit` / `aos_knn_offer`),
//! * **SoA**: [`psi_geometry::LeafSoA`] — one contiguous coordinate plane per
//!   dimension, block bitmask range tests, branch-light distance loops.
//!
//! The sweep covers leaf sizes 16/32/64 (the φ range the indexes use) for both
//! coordinate types (`i64`, `f64`). Both layouts must produce bit-identical
//! answers on every cell; the binary asserts this before reporting.
//!
//! Usage:
//! `cargo run --release -p psi-bench --bin bench_leaf [-- --reps 5 --out BENCH_leaf.json]`

use psi_geometry::leaf::{aos_knn_offer, aos_range_count, aos_range_visit};
use psi_geometry::{Coord, KnnHeap, LeafSoA, Point, Rect};
use psi_workloads as workloads;
use std::time::Instant;

/// Points per cell (leaf count is derived as `POINTS_PER_CELL / leaf_size`).
/// Sized so the per-leaf branch sequence is far past what the branch
/// predictor can memorise across inner repeats — a real tree visits
/// thousands of distinct leaves per query pass, and replaying a few hundred
/// identical tiny leaves lets the predictor "learn" the AoS branches in a
/// way no real workload sees — and so the working set exceeds L1 while both
/// layouts together still fit L2.
const POINTS_PER_CELL: usize = 1 << 15;
/// Independently allocated fixture instances per cell (see [`bench_cells`]).
/// One pool keeps the per-cell working set (both layouts together) inside L2
/// on the measurement box; more pools push every kernel into an L3-streaming
/// regime where layout differences drown in memory latency.
const NUM_POOLS: usize = 1;
/// Target points touched per timed run (sets the inner repeat count).
const TARGET_POINTS_PER_RUN: usize = 4_000_000;
const K: usize = 8;

/// Best-of-`reps` wall-clock for a pair of ops, interleaved (a, b, a, b, …)
/// so frequency scaling, thermal drift and predictor state hit both layouts
/// alike. One untimed warmup each.
fn time_pair<R>(
    reps: usize,
    mut a: impl FnMut() -> R,
    mut b: impl FnMut() -> R,
) -> (f64, f64, R, R) {
    let mut ra = a();
    let mut rb = b();
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t = Instant::now();
        ra = a();
        best_a = best_a.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        rb = b();
        best_b = best_b.min(t.elapsed().as_secs_f64());
    }
    (best_a, best_b, ra, rb)
}

struct Cell {
    coord: &'static str,
    leaf_size: usize,
    kernel: &'static str,
    aos_pps: f64,
    soa_pps: f64,
}

impl Cell {
    fn ratio(&self) -> f64 {
        self.soa_pps / self.aos_pps
    }
}

/// One cell's fixture: `POINTS_PER_CELL / leaf_size` leaves of `leaf_size`
/// points in both layouts, plus a query rect and query point per leaf.
struct Fixture<T: Coord, const D: usize> {
    aos: Vec<Vec<Point<T, D>>>,
    soa: Vec<LeafSoA<T, D>>,
    rects: Vec<Rect<T, D>>,
    queries: Vec<Point<T, D>>,
}

/// Order `pts` the way a kd build does — recursive median splits on rotating
/// dimensions — so consecutive `leaf_size` chunks are spatially tight boxes,
/// like the leaves Pkd/P-Orth actually hand to the kernels. (Random chunks of
/// a uniform pool would all span the whole domain, a leaf geometry no tree
/// produces.)
fn kd_order<T: Coord, const D: usize>(pts: &mut [Point<T, D>], leaf_size: usize, dim: usize) {
    if pts.len() <= leaf_size {
        return;
    }
    let mid = pts.len() / 2;
    pts.select_nth_unstable_by(mid, |a, b| a.coords[dim].total_cmp(&b.coords[dim]));
    let (l, r) = pts.split_at_mut(mid);
    kd_order(l, leaf_size, (dim + 1) % D);
    kd_order(r, leaf_size, (dim + 1) % D);
}

fn fixture<T: Coord, const D: usize>(points: &[Point<T, D>], leaf_size: usize) -> Fixture<T, D> {
    let mut points = points.to_vec();
    kd_order(&mut points, leaf_size, 0);
    let points = &points[..];
    let num_leaves = POINTS_PER_CELL / leaf_size;
    let mut aos = Vec::with_capacity(num_leaves);
    let mut soa = Vec::with_capacity(num_leaves);
    let mut rects = Vec::with_capacity(num_leaves);
    let mut queries = Vec::with_capacity(num_leaves);
    for i in 0..num_leaves {
        let chunk: Vec<Point<T, D>> = points[i * leaf_size..(i + 1) * leaf_size].to_vec();
        // Query rect from two of the leaf's own points (ordered per dim), so
        // selectivity varies per leaf but every rect actually hits the leaf.
        let (a, b) = (chunk[0], chunk[(i * 7 + 3) % leaf_size]);
        let mut lo = a;
        let mut hi = b;
        for d in 0..D {
            if lo.coords[d].total_cmp(&hi.coords[d]) == std::cmp::Ordering::Greater {
                std::mem::swap(&mut lo.coords[d], &mut hi.coords[d]);
            }
        }
        rects.push(Rect::from_corners(lo, hi));
        queries.push(chunk[(i * 13 + 1) % leaf_size]);
        soa.push(LeafSoA::from_points(&chunk));
        aos.push(chunk);
    }
    Fixture {
        aos,
        soa,
        rects,
        queries,
    }
}

/// Run the three kernels over a set of independently allocated fixtures in
/// both layouts; returns the cell rows and panics if any kernel disagrees
/// between layouts. Timing over several fixture instances averages out
/// per-allocation luck (page mapping, cache-set aliasing) that would
/// otherwise skew a single instance's numbers a few percent either way.
fn bench_cells<T: Coord, const D: usize>(
    coord: &'static str,
    leaf_size: usize,
    fxs: &[Fixture<T, D>],
    reps: usize,
) -> Vec<Cell> {
    let pass_points = POINTS_PER_CELL * fxs.len();
    let iters = (TARGET_POINTS_PER_RUN / pass_points).max(1);
    let points_per_run = (pass_points * iters) as f64;
    let mut cells = Vec::new();

    // range_count -----------------------------------------------------------
    let (aos_secs, soa_secs, aos_total, soa_total) = time_pair(
        reps,
        || {
            let mut total = 0usize;
            for _ in 0..iters {
                for fx in fxs {
                    for (leaf, rect) in fx.aos.iter().zip(&fx.rects) {
                        total += aos_range_count(leaf, rect);
                    }
                }
            }
            total
        },
        || {
            let mut total = 0usize;
            for _ in 0..iters {
                for fx in fxs {
                    for (leaf, rect) in fx.soa.iter().zip(&fx.rects) {
                        total += leaf.range_count(rect);
                    }
                }
            }
            total
        },
    );
    assert_eq!(
        aos_total, soa_total,
        "range_count disagrees ({coord}/{leaf_size})"
    );
    cells.push(Cell {
        coord,
        leaf_size,
        kernel: "range_count",
        aos_pps: points_per_run / aos_secs,
        soa_pps: points_per_run / soa_secs,
    });

    // range_visit into a reused arena ---------------------------------------
    let mut arena_a: Vec<Point<T, D>> = Vec::new();
    let mut arena_b: Vec<Point<T, D>> = Vec::new();
    let (aos_secs, soa_secs, aos_hits, soa_hits) = time_pair(
        reps,
        || {
            let mut hits = 0usize;
            for _ in 0..iters {
                for fx in fxs {
                    for (leaf, rect) in fx.aos.iter().zip(&fx.rects) {
                        arena_a.clear();
                        aos_range_visit(leaf, rect, |p: &Point<T, D>| arena_a.push(*p));
                        hits += arena_a.len();
                    }
                }
            }
            hits
        },
        || {
            let mut hits = 0usize;
            for _ in 0..iters {
                for fx in fxs {
                    for (leaf, rect) in fx.soa.iter().zip(&fx.rects) {
                        arena_b.clear();
                        leaf.range_visit(rect, |p: &Point<T, D>| arena_b.push(*p));
                        hits += arena_b.len();
                    }
                }
            }
            hits
        },
    );
    assert_eq!(
        aos_hits, soa_hits,
        "range_visit disagrees ({coord}/{leaf_size})"
    );
    cells.push(Cell {
        coord,
        leaf_size,
        kernel: "range_visit",
        aos_pps: points_per_run / aos_secs,
        soa_pps: points_per_run / soa_secs,
    });

    // kNN distance accumulation ---------------------------------------------
    // One heap per pass, as in a real query: the tree hands the same heap to
    // every leaf it reaches, so the bound from earlier leaves prunes later
    // ones and the steady state is scan-and-reject. (Resetting per leaf would
    // time the layout-independent heap insertion path instead.)
    let mut heap_a = KnnHeap::new(K);
    let mut heap_b = KnnHeap::new(K);
    let (aos_secs, soa_secs, aos_out, soa_out) = time_pair(
        reps,
        || {
            let mut out = 0usize;
            for it in 0..iters {
                for fx in fxs {
                    let q = &fx.queries[it % fx.queries.len()];
                    heap_a.reset(K);
                    for leaf in &fx.aos {
                        aos_knn_offer(leaf, q, &mut heap_a);
                    }
                    out += heap_a.len();
                }
            }
            out
        },
        || {
            let mut out = 0usize;
            for it in 0..iters {
                for fx in fxs {
                    let q = &fx.queries[it % fx.queries.len()];
                    heap_b.reset(K);
                    for leaf in &fx.soa {
                        leaf.knn_offer(q, &mut heap_b);
                    }
                    out += heap_b.len();
                }
            }
            out
        },
    );
    assert_eq!(aos_out, soa_out, "knn disagrees ({coord}/{leaf_size})");
    // Bit-exact check on the full result set, not just the counts.
    assert_eq!(
        heap_a.drain_sorted(),
        heap_b.drain_sorted(),
        "knn results disagree ({coord}/{leaf_size})"
    );
    cells.push(Cell {
        coord,
        leaf_size,
        kernel: "knn_offer",
        aos_pps: points_per_run / aos_secs,
        soa_pps: points_per_run / soa_secs,
    });

    cells
}

fn parse_extra_args() -> (usize, String) {
    let args: Vec<String> = std::env::args().collect();
    let mut reps = 5usize;
    let mut out = "BENCH_leaf.json".to_string();
    let mut i = 1;
    while i + 1 < args.len() {
        match args[i].as_str() {
            "--reps" => reps = args[i + 1].parse().expect("--reps expects an integer"),
            "--out" => out = args[i + 1].clone(),
            _ => {
                i += 1;
                continue;
            }
        }
        i += 2;
    }
    (reps, out)
}

fn main() {
    let (reps, out_path) = parse_extra_args();
    let leaf_sizes = [16usize, 32, 64];
    let seed = 424242u64;

    // NUM_POOLS independent pools of points per coordinate type, each sliced
    // into leaves; every cell is timed across all pools.
    let pools_i: Vec<Vec<Point<i64, 2>>> = (0..NUM_POOLS)
        .map(|p| workloads::uniform::<2>(POINTS_PER_CELL, 1_000_000_000, seed + p as u64))
        .collect();
    let pools_f: Vec<Vec<Point<f64, 2>>> = pools_i
        .iter()
        .map(|pool| {
            pool.iter()
                .map(|p| Point::new([p.coords[0] as f64 * 1e-3, p.coords[1] as f64 * 1e-3]))
                .collect()
        })
        .collect();

    println!(
        "# bench_leaf: {} pools x {} points/cell, leaf sizes {:?}, kernels range_count/range_visit/knn_offer, reps={}",
        NUM_POOLS, POINTS_PER_CELL, leaf_sizes, reps
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &l in &leaf_sizes {
        let fxs: Vec<_> = pools_i.iter().map(|p| fixture::<i64, 2>(p, l)).collect();
        cells.extend(bench_cells("i64", l, &fxs, reps));
        let fxs: Vec<_> = pools_f.iter().map(|p| fixture::<f64, 2>(p, l)).collect();
        cells.extend(bench_cells("f64", l, &fxs, reps));
    }

    let mut all_soa_ge_aos = true;
    for c in &cells {
        let flag = if c.ratio() >= 1.0 {
            ""
        } else {
            "  <-- SoA SLOWER"
        };
        all_soa_ge_aos &= c.ratio() >= 1.0;
        println!(
            "{:<4} leaf={:<3} {:<12} aos={:>12.0} pts/s  soa={:>12.0} pts/s  ratio={:>5.2}{}",
            c.coord,
            c.leaf_size,
            c.kernel,
            c.aos_pps,
            c.soa_pps,
            c.ratio(),
            flag
        );
    }

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"coord\": \"{}\", \"leaf_size\": {}, \"kernel\": \"{}\", \"aos_points_per_sec\": {:.0}, \"soa_points_per_sec\": {:.0}, \"soa_over_aos\": {:.3}}}",
                c.coord, c.leaf_size, c.kernel, c.aos_pps, c.soa_pps, c.ratio()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"leaf_scan_aos_vs_soa\",\n  {},\n  \"pools\": {},\n  \"points_per_cell\": {},\n  \"k\": {},\n  \"reps\": {},\n  \"soa_ge_aos_on_every_cell\": {},\n  \"note\": \"best-of-reps wall clock, AoS/SoA reps interleaved across {} independently allocated pools; pts/s = leaf points scanned per second; kNN heap persists across a pass as in a real query; single measurement box, multi-core rerun is follow-up\",\n  \"cells\": [\n{}\n  ]\n}}\n",
        psi_bench::host_meta_json(),
        NUM_POOLS,
        POINTS_PER_CELL,
        K,
        reps,
        all_soa_ge_aos,
        NUM_POOLS,
        rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("failed to write benchmark output");
    println!("# wrote {out_path}");
}
