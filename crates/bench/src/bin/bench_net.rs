//! Connection-scale socket benchmark: drive 1 000–10 000 concurrent TCP
//! connections through the ψ-net wire protocol and record what the
//! coalescer does with a serving-scale flush window.
//!
//! Each cell binds a fresh [`NetServer`] on loopback over a uniform 2-D
//! dataset and runs the multiplexed fan-out driver
//! ([`psi_net::loadgen::fanout`]): every connection is its own closed loop
//! (one request in flight), so the server sees the full connection count
//! concurrently. Recorded per cell: aggregate throughput, p50/p99 latency
//! and the achieved coalescing factor.
//!
//! Every cell ends with a hard correctness check: the order-independent
//! FNV checksum over every socket reply must equal an in-process replay of
//! the identical request sequence through the coalescing handle — a
//! dropped, corrupted or mis-routed answer fails the binary.
//!
//! The evented sweep is clamped to the process fd budget (a loopback
//! connection costs two descriptors in-process); clamping is logged, never
//! silent. The threaded transport is swept only to 1 000 connections —
//! thread-per-connection is exactly the regime the evented loop replaces.
//!
//! Usage:
//! `cargo run --release -p psi-bench --bin bench_net [-- --n 50000 --rounds 20 --out BENCH_net.json --smoke]`

use psi::registry::{self, BuildOptions};
use psi::PointI;
use psi_net::loadgen::{fanout, replay_checksum, FanoutSpec};
use psi_net::{fd_budget, loopback, NetConfig, NetServer, Transport};
use psi_server::{IndexFactory, PsiServer, ServeConfig};
use psi_workloads as workloads;
use std::sync::Arc;

const MAX_COORD: i64 = 1_000_000_000;

struct Cell {
    connections: usize,
    ops: usize,
    elapsed: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    coalesce: f64,
    checksum: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    family: &'static str,
    transport: Transport,
    data: &[PointI<2>],
    queries: &[PointI<2>],
    rects: &[psi_geometry::RectI<2>],
    connections: usize,
    spec_base: &FanoutSpec,
    shards: usize,
    coalesce: usize,
) -> Cell {
    let universe = workloads::universe::<2>(MAX_COORD);
    let opts = BuildOptions::with_universe(universe);
    let factory: IndexFactory<i64, 2> = Arc::new(move |pts: &[PointI<2>]| {
        registry::create::<2>(family, pts, &opts).expect("registry families all build")
    });
    let server = Arc::new(PsiServer::new(
        data,
        &universe,
        ServeConfig {
            shards,
            coalesce_max_batch: coalesce,
            writer_queue: 8,
            ..Default::default()
        },
        factory,
    ));
    let net = NetServer::spawn(
        Arc::clone(&server),
        loopback(),
        NetConfig {
            transport,
            coalesce: true,
        },
    )
    .expect("bind loopback");
    let spec = FanoutSpec {
        connections,
        ..spec_base.clone()
    };
    let out = fanout(net.addr(), queries, rects, &spec)
        .unwrap_or_else(|e| panic!("{} x{connections}: {e}", transport.name()));
    let (served, flushes) = server.coalesce_stats();
    let mut handle = server.client();
    let replay = replay_checksum(&mut handle, queries, rects, &spec);
    drop(handle);
    net.shutdown();
    assert_eq!(
        out.checksum,
        replay,
        "{} x{connections}: socket answers diverged from in-process replay",
        transport.name()
    );
    Cell {
        connections: out.connections,
        ops: out.ops,
        elapsed: out.elapsed_secs,
        qps: out.throughput_qps,
        p50_ms: out.p50_ms,
        p99_ms: out.p99_ms,
        coalesce: served as f64 / flushes.max(1) as f64,
        checksum: out.checksum,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut n = 50_000usize;
    let mut rounds = 20usize;
    let mut k = 10usize;
    let mut shards = 2usize;
    let mut coalesce = 64usize;
    let mut workers = 8usize;
    let mut family: &'static str = "spac-h";
    let mut out = "BENCH_net.json".to_string();
    let mut smoke = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            flag if i + 1 < args.len() => {
                let value = &args[i + 1];
                match flag {
                    "--n" => n = value.parse().expect("--n expects an integer"),
                    "--rounds" => rounds = value.parse().expect("--rounds expects an integer"),
                    "--k" => k = value.parse().expect("--k expects an integer"),
                    "--shards" => shards = value.parse().expect("--shards expects an integer"),
                    "--coalesce" => {
                        coalesce = value.parse().expect("--coalesce expects an integer")
                    }
                    "--workers" => workers = value.parse().expect("--workers expects an integer"),
                    "--family" => {
                        family = registry::resolve_name(value)
                            .unwrap_or_else(|| panic!("unknown family {value:?}"))
                    }
                    "--out" => out = value.clone(),
                    other => panic!("unknown flag {other:?}"),
                }
                i += 2;
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    if smoke {
        n = n.min(8_000);
        rounds = rounds.min(5);
    }

    // A loopback connection costs two descriptors in this process (client
    // end + accepted end), plus headroom for listener/epoll/wakeup fds.
    let budget = fd_budget();
    let max_conns = (budget / 2).saturating_sub(64).max(1);
    let sweeps: &[(Transport, &[usize])] = if smoke {
        &[
            (Transport::Threaded, &[64]),
            (Transport::Evented, &[64, 256]),
        ]
    } else {
        &[
            (Transport::Threaded, &[256, 1_000]),
            (Transport::Evented, &[1_000, 4_000, 10_000]),
        ]
    };

    let data = workloads::uniform::<2>(n, MAX_COORD, 42);
    let queries = workloads::ind_queries(&data, 512, 43);
    let rects = workloads::range_queries(&data, MAX_COORD, 50, 128, 44);
    let spec_base = FanoutSpec {
        connections: 0,
        workers,
        rounds,
        k,
    };

    println!(
        "# bench_net: family = {family}, n = {n}, rounds/conn = {rounds}, shards = {shards}, \
         coalesce = {coalesce}, workers = {workers}, fd budget = {budget} (max {max_conns} conns)"
    );
    let mut blocks: Vec<String> = Vec::new();
    for (transport, counts) in sweeps {
        let mut cells: Vec<String> = Vec::new();
        let mut done: Vec<usize> = Vec::new();
        for &want in counts.iter() {
            let connections = want.min(max_conns);
            if connections < want {
                println!(
                    "# {}: clamped {want} -> {connections} connections (fd budget {budget})",
                    transport.name()
                );
            }
            if done.contains(&connections) {
                continue;
            }
            done.push(connections);
            let cell = run_cell(
                family,
                *transport,
                &data,
                &queries,
                &rects,
                connections,
                &spec_base,
                shards,
                coalesce,
            );
            println!(
                "{:<8} conns={:<5} {:>8.0} q/s  p50={:>8.3}ms p99={:>8.3}ms  coalesce={:.1}x  checksum={:016x} ok",
                transport.name(),
                cell.connections,
                cell.qps,
                cell.p50_ms,
                cell.p99_ms,
                cell.coalesce,
                cell.checksum
            );
            cells.push(format!(
                "        {{\"connections\": {}, \"ops\": {}, \"elapsed_secs\": {:.4}, \
                 \"qps\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \
                 \"coalesce_factor\": {:.2}, \"checksum\": \"{:016x}\", \"checksum_ok\": true}}",
                cell.connections,
                cell.ops,
                cell.elapsed,
                cell.qps,
                cell.p50_ms,
                cell.p99_ms,
                cell.coalesce,
                cell.checksum
            ));
        }
        blocks.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"cells\": [\n{}\n      ]\n    }}",
            transport.name(),
            cells.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"net_fanout\",\n  {},\n  \"family\": \"{}\",\n  \"n\": {},\n  \
         \"rounds_per_connection\": {},\n  \"k\": {},\n  \"shards\": {},\n  \
         \"coalesce_max_batch\": {},\n  \"workers\": {},\n  \"fd_budget\": {},\n  \
         \"note\": \"closed-loop fan-out over real loopback TCP (psi-net wire protocol); every \
         connection has one request in flight, so conns = concurrent outstanding requests at the \
         coalescer; checksum_ok = socket replies bit-identical to in-process replay; measured on \
         a 1-core container — qps reflects protocol+coalescer overhead, not parallel query \
         speedup\",\n  \"transports\": [\n{}\n  ]\n}}\n",
        psi_bench::host_meta_json(),
        family,
        n,
        rounds,
        k,
        shards,
        coalesce,
        workers,
        budget,
        blocks.join(",\n")
    );
    std::fs::write(&out, json).expect("failed to write benchmark output");
    println!("# wrote {out}");
}
