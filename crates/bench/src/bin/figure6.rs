//! Figure 6 — operations on the real-world datasets.
//!
//! The paper uses COSMO (317M 3-D points) and OSM North America (776M 2-D
//! points); this repository substitutes the synthetic stand-ins
//! `workloads::cosmo_like` and `workloads::osm_like` that reproduce their
//! clustering structure (see DESIGN.md). For each index: build time,
//! incremental insertion/deletion with 0.01% batches, 10-NN (InD) and
//! range-list query time after construction.
//!
//! Usage: `cargo run --release -p psi-bench --bin figure6 [-- --n 100000]`

use psi::driver::{incremental_delete, incremental_insert, timed_build, QuerySet};
use psi::{
    CpamHTree, CpamZTree, POrthTree, POrthTree2, PkdTree, PointI, RTree, SpacHTree, SpacZTree,
    SpatialIndex, ZdTree,
};
use psi_bench::{fmt_secs, BenchConfig};
use psi_workloads as workloads;

fn run<I: SpatialIndex<i64, D>, const D: usize>(name: &str, data: &[PointI<D>], cfg: &BenchConfig) {
    let universe = cfg.universe::<D>();
    let (build, index) = timed_build::<I, i64, D>(data, &universe);
    let qs = QuerySet {
        knn_ind: workloads::ind_queries(data, cfg.knn_queries, cfg.seed ^ 0x81),
        knn_ood: vec![],
        k: cfg.k,
        ranges: workloads::range_queries(
            data,
            cfg.max_coord,
            (data.len() / 100).max(10),
            cfg.range_queries,
            cfg.seed ^ 0x82,
        ),
    };
    let q = qs.run(&index);
    drop(index);
    let batch = ((data.len() as f64 * 0.0001).ceil() as usize).max(1);
    let (ins, _) = incremental_insert::<I, i64, D>(data, batch, &universe, None);
    let (del, _) = incremental_delete::<I, i64, D>(data, batch, &universe, None);
    println!(
        "{:<10} build={:>9} insert={:>9} delete={:>9} 10NN={:>9} rangeList={:>9}",
        name,
        fmt_secs(build),
        fmt_secs(ins.update_time),
        fmt_secs(del.update_time),
        fmt_secs(q.knn_ind),
        fmt_secs(q.range_list)
    );
}

fn main() {
    let cfg3 = BenchConfig::default_3d().from_args();
    println!(
        "# Figure 6: real-world stand-ins (cosmo_like 3-D n = {}, osm_like 2-D n = {})",
        cfg3.n,
        cfg3.n * 2
    );

    println!("\n== cosmo_like (3-D, clustered) ==");
    let cosmo = workloads::cosmo_like(cfg3.n, cfg3.max_coord, cfg3.seed);
    run::<POrthTree<3>, 3>("P-Orth", &cosmo, &cfg3);
    run::<ZdTree<3>, 3>("Zd-Tree", &cosmo, &cfg3);
    run::<SpacHTree<3>, 3>("SPaC-H", &cosmo, &cfg3);
    run::<SpacZTree<3>, 3>("SPaC-Z", &cosmo, &cfg3);
    run::<CpamHTree<3>, 3>("CPAM-H", &cosmo, &cfg3);
    run::<CpamZTree<3>, 3>("CPAM-Z", &cosmo, &cfg3);
    run::<RTree<3>, 3>("Boost-R", &cosmo, &cfg3);
    run::<PkdTree<3>, 3>("Pkd-Tree", &cosmo, &cfg3);

    println!("\n== osm_like (2-D, road-network-like) ==");
    let mut cfg2 = BenchConfig::default_2d().from_args();
    cfg2.n = cfg3.n * 2;
    let osm = workloads::osm_like(cfg2.n, cfg2.max_coord, cfg2.seed);
    run::<POrthTree2, 2>("P-Orth", &osm, &cfg2);
    run::<ZdTree<2>, 2>("Zd-Tree", &osm, &cfg2);
    run::<SpacHTree<2>, 2>("SPaC-H", &osm, &cfg2);
    run::<SpacZTree<2>, 2>("SPaC-Z", &osm, &cfg2);
    run::<CpamHTree<2>, 2>("CPAM-H", &osm, &cfg2);
    run::<CpamZTree<2>, 2>("CPAM-Z", &osm, &cfg2);
    run::<RTree<2>, 2>("Boost-R", &osm, &cfg2);
    run::<PkdTree<2>, 2>("Pkd-Tree", &osm, &cfg2);
}
