//! Figure 8 — the update-vs-query trade-off scatter plot.
//!
//! The paper summarises Fig. 3 by plotting, for every index and every
//! distribution, the geometric mean of its update times against the geometric
//! mean of its query times. This binary re-runs a reduced version of the
//! Fig. 3 protocol and prints the scatter coordinates (one line per index per
//! distribution); lower is better on both axes.
//!
//! Usage: `cargo run --release -p psi-bench --bin figure8 [-- --n 100000]`

use psi::{CpamHTree, CpamZTree, POrthTree2, PkdTree, RTree, SpacHTree, SpacZTree, ZdTree};
use psi_bench::{geometric_mean, master_row, BenchConfig, MasterRow};
use psi_workloads::Distribution;
use std::time::Duration;

fn scatter_point(row: &MasterRow) -> (f64, f64) {
    // Update axis: build + all incremental insert/delete totals.
    let mut updates: Vec<Duration> = vec![row.build];
    updates.extend(&row.inc_insert);
    updates.extend(&row.inc_delete);
    // Query axis: every query column of the three probes.
    let queries: Vec<Duration> = [row.q_build, row.q_insert, row.q_delete]
        .iter()
        .flat_map(|q| [q.knn_ind, q.knn_ood, q.range_count, q.range_list])
        .collect();
    (geometric_mean(&updates), geometric_mean(&queries))
}

fn main() {
    let mut cfg = BenchConfig::default_2d();
    cfg.n = 100_000;
    cfg.batch_ratios = vec![0.01, 0.0001];
    let cfg = cfg.from_args();
    println!(
        "# Figure 8: update-vs-query scatter (geometric means, seconds); n = {}",
        cfg.n
    );
    println!(
        "{:<12} {:<12} {:>14} {:>14}",
        "distribution", "index", "update_gm", "query_gm"
    );

    for dist in Distribution::SYNTHETIC {
        let data = dist.generate::<2>(cfg.n, cfg.max_coord, cfg.seed);
        let rows = vec![
            (
                "P-Orth",
                scatter_point(&master_row::<POrthTree2, 2>(&data, &cfg)),
            ),
            (
                "Zd-Tree",
                scatter_point(&master_row::<ZdTree<2>, 2>(&data, &cfg)),
            ),
            (
                "SPaC-H",
                scatter_point(&master_row::<SpacHTree<2>, 2>(&data, &cfg)),
            ),
            (
                "SPaC-Z",
                scatter_point(&master_row::<SpacZTree<2>, 2>(&data, &cfg)),
            ),
            (
                "CPAM-H",
                scatter_point(&master_row::<CpamHTree<2>, 2>(&data, &cfg)),
            ),
            (
                "CPAM-Z",
                scatter_point(&master_row::<CpamZTree<2>, 2>(&data, &cfg)),
            ),
            (
                "Boost-R",
                scatter_point(&master_row::<RTree<2>, 2>(&data, &cfg)),
            ),
            (
                "Pkd-Tree",
                scatter_point(&master_row::<PkdTree<2>, 2>(&data, &cfg)),
            ),
        ];
        for (name, (u, q)) in rows {
            println!("{:<12} {:<12} {:>14.5} {:>14.5}", dist.name(), name, u, q);
        }
    }
}
