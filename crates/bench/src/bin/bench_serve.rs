//! Closed-loop serving benchmark: sweep client counts × write rates over
//! registry families through the `psi-server` subsystem (epoch-published
//! shards + request coalescer + spatial router).
//!
//! Each cell builds a server over a uniform 2-D dataset, spawns `clients`
//! closed-loop reader threads (each issuing `ops` queries — a kNN / kNN /
//! range-count / range-list round-robin — and measuring per-query latency)
//! while a writer publishes *move* batches (delete a slice, reinsert it) at
//! the cell's pacing. Recorded per cell: aggregate throughput, p50/p99
//! latency, batches published, and the achieved coalescing factor.
//!
//! The writer's move batches keep the live count invariant, so every cell
//! ends with a hard correctness check: after quiescing, the server must
//! hold exactly `n` points — a torn or lost batch fails the binary.
//!
//! Usage:
//! `cargo run --release -p psi-bench --bin bench_serve [-- --n 50000 --ops 2000 --shards 2 --out BENCH_serve.json --smoke]`
//!
//! `--smoke` shrinks the sweep to a CI-friendly size.

use psi::registry::{self, BuildOptions};
use psi::PointI;
use psi_server::{
    closed_loop, DurabilityConfig, FsyncPolicy, IndexFactory, LoadSpec, PsiServer, Router,
    ServeConfig,
};
use psi_workloads as workloads;
use std::sync::Arc;
use std::time::Instant;

const MAX_COORD: i64 = 1_000_000_000;

struct Cell {
    family: &'static str,
    clients: usize,
    write_mode: &'static str,
    ops: usize,
    batches: u64,
    elapsed: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    coalesce: f64,
}

/// Writer pacing per sweep point: `None` = read-only cell.
fn write_modes() -> Vec<(&'static str, Option<u64>)> {
    vec![
        ("read-only", None),
        ("paced-2ms", Some(2)),
        ("unpaced", Some(0)),
    ]
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    family: &'static str,
    data: &[PointI<2>],
    queries: &[PointI<2>],
    rects: &[psi_geometry::RectI<2>],
    clients: usize,
    ops: usize,
    write_every_ms: Option<u64>,
    shards: usize,
    coalesce: usize,
    k: usize,
) -> Cell {
    let universe = workloads::universe::<2>(MAX_COORD);
    let opts = BuildOptions::with_universe(universe);
    let factory: IndexFactory<i64, 2> = Arc::new(move |pts: &[PointI<2>]| {
        registry::create::<2>(family, pts, &opts).expect("registry families all build")
    });
    let server = Arc::new(PsiServer::new(
        data,
        &universe,
        ServeConfig {
            shards,
            coalesce_max_batch: coalesce,
            writer_queue: 8,
            ..Default::default()
        },
        factory,
    ));
    let spec = LoadSpec {
        clients,
        ops_per_client: ops,
        k,
        // write_batch = 0 disables the writer (the read-only cells).
        write_batch: if write_every_ms.is_some() { 200 } else { 0 },
        write_every_ms: write_every_ms.unwrap_or(0),
    };
    let out = closed_loop(&server, data, queries, rects, &spec)
        .unwrap_or_else(|e| panic!("{family}: {e}"));
    Cell {
        family,
        clients,
        write_mode: match write_every_ms {
            None => "read-only",
            Some(0) => "unpaced",
            Some(_) => "paced-2ms",
        },
        ops: out.ops,
        batches: out.batches,
        elapsed: out.elapsed_secs,
        qps: out.throughput_qps,
        p50_ms: out.p50_ms,
        p99_ms: out.p99_ms,
        coalesce: out.coalesce_factor,
    }
}

/// Publish-latency comparison: how long one epoch publication takes under
/// the left-right double-copy protocol versus persistent CoW snapshots.
/// Left-right shards rebuild/patch a standby tree and wait out straggling
/// readers; persistent shards apply the batch once and swap an O(log n)
/// path-copied root.
struct PublishCell {
    family: &'static str,
    mode: &'static str,
    rounds: usize,
    mean_ms: f64,
    p99_ms: f64,
}

fn publish_latency_cell(
    family: &'static str,
    data: &[PointI<2>],
    shards: usize,
    batch: usize,
    rounds: usize,
) -> PublishCell {
    let universe = workloads::universe::<2>(MAX_COORD);
    let opts = BuildOptions::with_universe(universe);
    let factory: IndexFactory<i64, 2> = Arc::new(move |pts: &[PointI<2>]| {
        registry::create::<2>(family, pts, &opts).expect("registry families all build")
    });
    let router = Router::new(&factory, data, &universe, shards);
    let mode = if router.is_persistent() {
        "persistent"
    } else {
        "left-right"
    };
    let mut lat_ms: Vec<f64> = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let span = &data[(r * batch) % (data.len() - batch)..][..batch];
        let moved: Vec<PointI<2>> = span.to_vec();
        // A reader pins the pre-publish epoch for the duration of the
        // publish, as a concurrent query would. The pin is re-taken each
        // round: holding one pin across many publishes would (by design)
        // block a left-right writer forever — the protocol this bench
        // compares against — and on this single thread that is a deadlock.
        let pin = router.pin();
        let t = Instant::now();
        router.publish(&moved, &moved);
        lat_ms.push(t.elapsed().as_secs_f64() * 1e3);
        drop(pin);
    }
    lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean_ms = lat_ms.iter().sum::<f64>() / rounds as f64;
    let p99_ms = lat_ms[(rounds * 99 / 100).min(rounds - 1)];
    PublishCell {
        family,
        mode,
        rounds,
        mean_ms,
        p99_ms,
    }
}

/// The ROADMAP item-3 follow-up: what does each fsync policy cost? One
/// durable server per policy over a throwaway WAL directory, the same move
/// batches pushed through each, write throughput measured wall-clock and
/// fsync/append latency read back as snapshot deltas of the WAL's own
/// psi-obs histograms — the same series `OP_STATS` exposes live.
struct FsyncCell {
    policy: String,
    batches: u64,
    elapsed: f64,
    batches_per_sec: f64,
    wal_mib: f64,
    fsyncs: u64,
    fsync_p50_us: f64,
    fsync_p99_us: f64,
    append_p50_us: f64,
    append_p99_us: f64,
}

fn fsync_policy_cell(
    family: &'static str,
    data: &[PointI<2>],
    shards: usize,
    batch: usize,
    rounds: usize,
    policy: FsyncPolicy,
) -> FsyncCell {
    let dir = std::env::temp_dir().join(format!(
        "psi-bench-fsync-{}-{}",
        std::process::id(),
        policy.name()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let universe = workloads::universe::<2>(MAX_COORD);
    let opts = BuildOptions::with_universe(universe);
    let factory: IndexFactory<i64, 2> = Arc::new(move |pts: &[PointI<2>]| {
        registry::create::<2>(family, pts, &opts).expect("registry families all build")
    });
    let server = Arc::new(PsiServer::new(
        data,
        &universe,
        ServeConfig {
            shards,
            writer_queue: 8,
            durability: Some(DurabilityConfig {
                dir: dir.clone(),
                fsync: policy,
            }),
            ..Default::default()
        },
        factory,
    ));
    // Resolve the WAL's registered series (idempotent: same name + labels
    // returns the same metric the WAL writer records into).
    let fsync_hist = psi_obs::histogram(
        "psi_wal_fsync_latency_ns",
        "wall time of one WAL flush+fsync to stable storage",
        &[],
    );
    let append_hist = psi_obs::histogram(
        "psi_wal_append_latency_ns",
        "wall time of one WAL batch append, fsync included when the policy demands it",
        &[],
    );
    let wal_bytes = psi_obs::counter(
        "psi_wal_bytes_written_total",
        "record bytes appended to WAL segments",
        &[],
    );
    let fsync_before = fsync_hist.snapshot();
    let append_before = append_hist.snapshot();
    let bytes_before = wal_bytes.get();
    let t = Instant::now();
    for r in 0..rounds {
        let lo = (r * batch) % (data.len() - batch);
        let slice = data[lo..lo + batch].to_vec();
        server.submit(slice.clone(), slice);
    }
    server.quiesce();
    let elapsed = t.elapsed().as_secs_f64();
    let batches = server.batches_applied();
    let fsync = fsync_hist.snapshot().delta(&fsync_before);
    let append = append_hist.snapshot().delta(&append_before);
    let bytes = wal_bytes.get() - bytes_before;
    let _ = std::fs::remove_dir_all(&dir);
    let us = |ns: u64| ns as f64 / 1e3;
    FsyncCell {
        policy: policy.name(),
        batches,
        elapsed,
        batches_per_sec: batches as f64 / elapsed.max(1e-9),
        wal_mib: bytes as f64 / (1024.0 * 1024.0),
        fsyncs: fsync.count(),
        fsync_p50_us: us(fsync.quantile(0.5)),
        fsync_p99_us: us(fsync.quantile(0.99)),
        append_p50_us: us(append.quantile(0.5)),
        append_p99_us: us(append.quantile(0.99)),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut n = 50_000usize;
    let mut ops = 1_500usize;
    let mut shards = 2usize;
    let mut coalesce = 64usize;
    let mut out = "BENCH_serve.json".to_string();
    let mut smoke = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            flag if i + 1 < args.len() => {
                let value = &args[i + 1];
                match flag {
                    "--n" => n = value.parse().expect("--n expects an integer"),
                    "--ops" => ops = value.parse().expect("--ops expects an integer"),
                    "--shards" => shards = value.parse().expect("--shards expects an integer"),
                    "--coalesce" => {
                        coalesce = value.parse().expect("--coalesce expects an integer")
                    }
                    "--out" => out = value.clone(),
                    other => panic!("unknown flag {other:?}"),
                }
                i += 2;
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    if smoke {
        n = n.min(8_000);
        ops = ops.min(200);
    }

    let families: &[&'static str] = if smoke {
        &["spac-h"]
    } else {
        &["spac-h", "p-orth", "pkd"]
    };
    let client_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let modes = if smoke {
        vec![("read-only", None), ("unpaced", Some(0))]
    } else {
        write_modes()
    };
    let k = 10;

    let data = workloads::uniform::<2>(n, MAX_COORD, 42);
    let queries = workloads::ind_queries(&data, 512, 43);
    let rects = workloads::range_queries(&data, MAX_COORD, 50, 128, 44);

    println!(
        "# bench_serve: n = {n}, ops/client = {ops}, shards = {shards}, coalesce = {coalesce}, machine threads = {}",
        rayon::current_num_threads()
    );
    let mut blocks: Vec<String> = Vec::new();
    for &family in families {
        let mut cells: Vec<String> = Vec::new();
        for &clients in client_counts {
            for (_, pace) in &modes {
                let cell = run_cell(
                    family, &data, &queries, &rects, clients, ops, *pace, shards, coalesce, k,
                );
                println!(
                    "{:<8} clients={:<2} write={:<9} {:>8.0} q/s  p50={:>7.3}ms p99={:>7.3}ms  batches={:<4} coalesce={:.1}x",
                    cell.family,
                    cell.clients,
                    cell.write_mode,
                    cell.qps,
                    cell.p50_ms,
                    cell.p99_ms,
                    cell.batches,
                    cell.coalesce
                );
                cells.push(format!(
                    "        {{\"clients\": {}, \"write_mode\": \"{}\", \"ops\": {}, \
                     \"batches\": {}, \"elapsed_secs\": {:.4}, \"qps\": {:.1}, \
                     \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"coalesce_factor\": {:.2}}}",
                    cell.clients,
                    cell.write_mode,
                    cell.ops,
                    cell.batches,
                    cell.elapsed,
                    cell.qps,
                    cell.p50_ms,
                    cell.p99_ms,
                    cell.coalesce
                ));
            }
        }
        blocks.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"cells\": [\n{}\n      ]\n    }}",
            family,
            cells.join(",\n")
        ));
    }

    // Publish-latency comparison: one left-right family against one
    // persistent (CoW snapshot) family, same data and batch size.
    let publish_rounds = if smoke { 40 } else { 200 };
    let publish_batch = 200.min(n / 4);
    let mut publish_cells: Vec<String> = Vec::new();
    for family in ["pkd", "cpam-h"] {
        let cell = publish_latency_cell(family, &data, shards, publish_batch, publish_rounds);
        println!(
            "publish  {:<8} mode={:<10} rounds={:<4} mean={:.3}ms p99={:.3}ms",
            cell.family, cell.mode, cell.rounds, cell.mean_ms, cell.p99_ms
        );
        publish_cells.push(format!(
            "    {{\"family\": \"{}\", \"mode\": \"{}\", \"batch\": {}, \"rounds\": {}, \
             \"mean_ms\": {:.4}, \"p99_ms\": {:.4}}}",
            cell.family, cell.mode, publish_batch, cell.rounds, cell.mean_ms, cell.p99_ms
        ));
    }

    // Fsync-policy sweep: the durability cost curve, measured through the
    // WAL's own psi-obs histograms.
    let fsync_rounds = if smoke { 30 } else { 150 };
    let fsync_batch = 200.min(n / 4);
    let mut fsync_cells: Vec<String> = Vec::new();
    for policy in [
        FsyncPolicy::EveryBatch,
        FsyncPolicy::EveryN(4),
        FsyncPolicy::Os,
    ] {
        let cell = fsync_policy_cell("pkd", &data, shards, fsync_batch, fsync_rounds, policy);
        println!(
            "fsync    {:<12} {:>7.0} batch/s  fsyncs={:<5} fsync p50={:.1}us p99={:.1}us  append p50={:.1}us p99={:.1}us  wal={:.1}MiB",
            cell.policy,
            cell.batches_per_sec,
            cell.fsyncs,
            cell.fsync_p50_us,
            cell.fsync_p99_us,
            cell.append_p50_us,
            cell.append_p99_us,
            cell.wal_mib
        );
        fsync_cells.push(format!(
            "    {{\"policy\": \"{}\", \"batch\": {}, \"batches\": {}, \"elapsed_secs\": {:.4}, \
             \"batches_per_sec\": {:.1}, \"wal_mib\": {:.2}, \"fsyncs\": {}, \
             \"fsync_p50_us\": {:.2}, \"fsync_p99_us\": {:.2}, \
             \"append_p50_us\": {:.2}, \"append_p99_us\": {:.2}}}",
            cell.policy,
            fsync_batch,
            cell.batches,
            cell.elapsed,
            cell.batches_per_sec,
            cell.wal_mib,
            cell.fsyncs,
            cell.fsync_p50_us,
            cell.fsync_p99_us,
            cell.append_p50_us,
            cell.append_p99_us
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"serve_closed_loop\",\n  {},\n  \"n\": {},\n  \
         \"ops_per_client\": {},\n  \"shards\": {},\n  \"coalesce_max_batch\": {},\n  \"k\": {},\n  \
         \"note\": \"closed-loop clients over psi-server (epoch snapshots + coalescer + shard router); \
         move batches conserve the live count (checked); measured on a 1-core container — client \
         counts above machine_threads time-share and cannot show scaling; rerun on a multi-core box \
         for real speedups; publish_latency compares the left-right double-copy protocol against \
         persistent CoW snapshot publication, a reader pin re-taken around each publish; \
         fsync_sweep pushes identical move batches through a durable server per FsyncPolicy, \
         latencies read from the WAL's psi-obs histograms\",\n  \
         \"publish_latency\": [\n{}\n  ],\n  \"fsync_sweep\": [\n{}\n  ],\n  \"families\": [\n{}\n  ]\n}}\n",
        psi_bench::host_meta_json(),
        n,
        ops,
        shards,
        coalesce,
        k,
        publish_cells.join(",\n"),
        fsync_cells.join(",\n"),
        blocks.join(",\n")
    );
    std::fs::write(&out, json).expect("failed to write benchmark output");
    println!("# wrote {out}");
}
