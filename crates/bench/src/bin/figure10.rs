//! Figure 10 — single-batch update time as a function of the batch size.
//!
//! An initial tree is built over the full dataset; a single batch insertion
//! (fresh points from the same distribution) and a single batch deletion
//! (existing points) are then timed for batch sizes sweeping three decades.
//! The paper sweeps 10^5..10^9 points on a 10^9-point tree; this binary sweeps
//! proportional fractions of the configured `n`.
//!
//! Usage: `cargo run --release -p psi-bench --bin figure10 [-- --n 200000]`

use psi::driver::{timed_batch_delete, timed_batch_insert, timed_build};
use psi::{POrthTree2, PkdTree, PointI, SpacHTree, SpacZTree, SpatialIndex, ZdTree};
use psi_bench::{fmt_secs, BenchConfig};
use psi_workloads::Distribution;

fn run<I: SpatialIndex<i64, 2>>(
    name: &str,
    data: &[PointI<2>],
    dist: Distribution,
    cfg: &BenchConfig,
) {
    let universe = cfg.universe::<2>();
    // Batch sizes: 0.01%, 0.1%, 1%, 10%, 100% of n (mirroring the paper's
    // 1e5..1e9 sweep on 1e9 points).
    for frac in [0.0001, 0.001, 0.01, 0.1, 1.0] {
        let b = ((data.len() as f64 * frac).ceil() as usize).max(1);
        let insert_batch = dist.generate::<2>(b, cfg.max_coord, cfg.seed ^ 0xA1);
        let delete_batch = &data[..b];

        let (_t, mut index) = timed_build::<I, i64, 2>(data, &universe);
        let ti = timed_batch_insert(&mut index, &insert_batch);
        let (_t, mut index) = timed_build::<I, i64, 2>(data, &universe);
        let td = timed_batch_delete(&mut index, delete_batch);
        println!(
            "{:<10} batch={:<9} insert={:>9} delete={:>9}",
            name,
            b,
            fmt_secs(ti),
            fmt_secs(td)
        );
    }
}

fn main() {
    let cfg = BenchConfig::default_2d().from_args();
    println!(
        "# Figure 10: single-batch update time vs batch size (base tree n = {})",
        cfg.n
    );
    for dist in Distribution::SYNTHETIC {
        println!("\n== {} ==", dist.name());
        let data = dist.generate::<2>(cfg.n, cfg.max_coord, cfg.seed);
        run::<SpacHTree<2>>("SPaC-H", &data, dist, &cfg);
        run::<SpacZTree<2>>("SPaC-Z", &data, dist, &cfg);
        run::<POrthTree2>("P-Orth", &data, dist, &cfg);
        run::<ZdTree<2>>("Zd-Tree", &data, dist, &cfg);
        run::<PkdTree<2>>("Pkd-Tree", &data, dist, &cfg);
    }
}
