//! Figure 5 — range-report (range-list) query time as a function of the
//! output size, on a tree built by incremental insertion with 0.01% batches.
//!
//! Usage: `cargo run --release -p psi-bench --bin figure5 [-- --n 100000]`

use psi::driver::{incremental_insert, QuerySet};
use psi::{
    CpamHTree, CpamZTree, POrthTree2, PkdTree, PointI, RTree, SpacHTree, SpacZTree, SpatialIndex,
    ZdTree,
};
use psi_bench::{fmt_secs, BenchConfig};
use psi_workloads::{self as workloads, Distribution};

fn run<I: SpatialIndex<i64, 2>>(name: &str, data: &[PointI<2>], cfg: &BenchConfig) {
    let universe = cfg.universe::<2>();
    let batch = ((data.len() as f64 * 0.0001).ceil() as usize).max(1);
    let (_res, index) = incremental_insert::<I, i64, 2>(data, batch, &universe, None);
    // Sweep the target output size over four decades (the paper sweeps the
    // range size from 10^4 to 10^6 coordinates on 10^9 points; at our scale we
    // sweep expected output counts instead, which is the same x-axis).
    for target in [10usize, 100, 1_000, 10_000] {
        let qs = QuerySet {
            knn_ind: vec![],
            knn_ood: vec![],
            k: 1,
            ranges: workloads::range_queries(
                data,
                cfg.max_coord,
                target,
                cfg.range_queries,
                cfg.seed ^ 0x71,
            ),
        };
        let t = qs.run(&index);
        println!(
            "{:<10} target_output={:<7} range_list={:>9}  (range_count={:>9})",
            name,
            target,
            fmt_secs(t.range_list),
            fmt_secs(t.range_count)
        );
    }
}

fn main() {
    let cfg = BenchConfig::default_2d().from_args();
    println!(
        "# Figure 5: range-report time vs output size (n = {}, {} range queries)",
        cfg.n, cfg.range_queries
    );
    for dist in Distribution::SYNTHETIC {
        println!("\n== {} ==", dist.name());
        let data = dist.generate::<2>(cfg.n, cfg.max_coord, cfg.seed);
        run::<POrthTree2>("P-Orth", &data, &cfg);
        run::<ZdTree<2>>("Zd-Tree", &data, &cfg);
        run::<SpacHTree<2>>("SPaC-H", &data, &cfg);
        run::<SpacZTree<2>>("SPaC-Z", &data, &cfg);
        run::<CpamHTree<2>>("CPAM-H", &data, &cfg);
        run::<CpamZTree<2>>("CPAM-Z", &data, &cfg);
        run::<RTree<2>>("Boost-R", &data, &cfg);
        run::<PkdTree<2>>("Pkd-Tree", &data, &cfg);
    }
}
