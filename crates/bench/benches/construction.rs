//! Criterion micro-benchmarks: index construction across distributions.
//!
//! Complements the `figure3` binary with statistically robust per-operation
//! timings at a smaller scale (fast enough to run in CI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psi::{CpamHTree, POrthTree2, PkdTree, SpacHTree, SpacZTree, SpatialIndex, ZdTree};
use psi_workloads::{self as workloads, Distribution};
use std::time::Duration;

const N: usize = 50_000;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let universe = workloads::universe::<2>(workloads::DEFAULT_MAX_COORD_2D);

    for dist in Distribution::SYNTHETIC {
        let data = dist.generate::<2>(N, workloads::DEFAULT_MAX_COORD_2D, 42);
        group.bench_with_input(BenchmarkId::new("P-Orth", dist.name()), &data, |b, d| {
            b.iter(|| <POrthTree2 as SpatialIndex<i64, 2>>::build(d, &universe))
        });
        group.bench_with_input(BenchmarkId::new("SPaC-H", dist.name()), &data, |b, d| {
            b.iter(|| <SpacHTree<2> as SpatialIndex<i64, 2>>::build(d, &universe))
        });
        group.bench_with_input(BenchmarkId::new("SPaC-Z", dist.name()), &data, |b, d| {
            b.iter(|| <SpacZTree<2> as SpatialIndex<i64, 2>>::build(d, &universe))
        });
        group.bench_with_input(BenchmarkId::new("CPAM-H", dist.name()), &data, |b, d| {
            b.iter(|| <CpamHTree<2> as SpatialIndex<i64, 2>>::build(d, &universe))
        });
        group.bench_with_input(BenchmarkId::new("Zd-Tree", dist.name()), &data, |b, d| {
            b.iter(|| <ZdTree<2> as SpatialIndex<i64, 2>>::build(d, &universe))
        });
        group.bench_with_input(BenchmarkId::new("Pkd-Tree", dist.name()), &data, |b, d| {
            b.iter(|| <PkdTree<2> as SpatialIndex<i64, 2>>::build(d, &universe))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
