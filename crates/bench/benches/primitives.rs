//! Criterion micro-benchmarks of the parallel-primitives substrate: the SFC
//! codecs, the sieve, and the sorting routines every index is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psi::{HilbertCurve, MortonCurve, Point, PointI, SfcCurve};
use psi_parutils::{exclusive_scan, hybrid_sort_keys, par_sort_by_key, sieve_by};
use psi_workloads as workloads;
use std::time::Duration;

fn bench_sfc(c: &mut Criterion) {
    let mut group = c.benchmark_group("sfc_encode");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let pts: Vec<PointI<2>> = workloads::uniform::<2>(100_000, workloads::DEFAULT_MAX_COORD_2D, 1);
    group.bench_function("morton2", |b| {
        b.iter(|| {
            pts.iter()
                .map(<MortonCurve as SfcCurve<2>>::encode)
                .fold(0u64, u64::wrapping_add)
        })
    });
    group.bench_function("hilbert2", |b| {
        b.iter(|| {
            pts.iter()
                .map(<HilbertCurve as SfcCurve<2>>::encode)
                .fold(0u64, u64::wrapping_add)
        })
    });
    let pts3: Vec<PointI<3>> = workloads::uniform::<3>(100_000, workloads::DEFAULT_MAX_COORD_3D, 1);
    group.bench_function("morton3", |b| {
        b.iter(|| {
            pts3.iter()
                .map(<MortonCurve as SfcCurve<3>>::encode)
                .fold(0u64, u64::wrapping_add)
        })
    });
    group.bench_function("hilbert3", |b| {
        b.iter(|| {
            pts3.iter()
                .map(<HilbertCurve as SfcCurve<3>>::encode)
                .fold(0u64, u64::wrapping_add)
        })
    });
    group.finish();
}

fn bench_sieve_and_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    let data: Vec<u64> = (0..400_000u64)
        .map(|i| i.wrapping_mul(2654435761))
        .collect();

    for nbuckets in [4usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("sieve", nbuckets), &nbuckets, |b, &nb| {
            b.iter_batched(
                || data.clone(),
                |mut v| sieve_by(&mut v, nb, |x| (*x as usize) % nb),
                criterion::BatchSize::LargeInput,
            )
        });
    }

    group.bench_function("par_sort_by_key", |b| {
        b.iter_batched(
            || data.clone(),
            |mut v| par_sort_by_key(&mut v, |x| *x),
            criterion::BatchSize::LargeInput,
        )
    });

    let points: Vec<PointI<2>> =
        workloads::uniform::<2>(200_000, workloads::DEFAULT_MAX_COORD_2D, 3);
    group.bench_function("hybrid_sort_keys_hilbert", |b| {
        b.iter(|| hybrid_sort_keys(&points, <HilbertCurve as SfcCurve<2>>::encode))
    });

    let counts: Vec<usize> = (0..1_000_000).map(|i| i % 7).collect();
    group.bench_function("exclusive_scan_1M", |b| b.iter(|| exclusive_scan(&counts)));

    // Keep the Point type in use so the import is exercised even if the
    // benchmark set shrinks during tuning.
    let _ = Point::new([0i64, 0]);
    group.finish();
}

criterion_group!(benches, bench_sfc, bench_sieve_and_sort);
criterion_main!(benches);
