//! Criterion micro-benchmarks: single batch insertion and deletion into an
//! existing tree (the paper's headline operation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psi::{POrthTree2, PkdTree, SpacHTree, SpacZTree, SpatialIndex, ZdTree};
use psi_workloads::{self as workloads, Distribution};
use std::time::Duration;

const N: usize = 50_000;
const BATCH: usize = 5_000;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_insert");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let universe = workloads::universe::<2>(workloads::DEFAULT_MAX_COORD_2D);

    for dist in [Distribution::Uniform, Distribution::Varden] {
        let data = dist.generate::<2>(N, workloads::DEFAULT_MAX_COORD_2D, 42);
        let batch = dist.generate::<2>(BATCH, workloads::DEFAULT_MAX_COORD_2D, 77);

        macro_rules! bench_index {
            ($name:literal, $ty:ty) => {
                group.bench_with_input(BenchmarkId::new($name, dist.name()), &data, |b, d| {
                    b.iter_batched(
                        || <$ty as SpatialIndex<i64, 2>>::build(d, &universe),
                        |mut index| index.batch_insert(&batch),
                        criterion::BatchSize::LargeInput,
                    )
                });
            };
        }
        bench_index!("P-Orth", POrthTree2);
        bench_index!("SPaC-H", SpacHTree<2>);
        bench_index!("SPaC-Z", SpacZTree<2>);
        bench_index!("Zd-Tree", ZdTree<2>);
        bench_index!("Pkd-Tree", PkdTree<2>);
    }
    group.finish();
}

fn bench_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_delete");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let universe = workloads::universe::<2>(workloads::DEFAULT_MAX_COORD_2D);

    for dist in [Distribution::Uniform, Distribution::Varden] {
        let data = dist.generate::<2>(N, workloads::DEFAULT_MAX_COORD_2D, 42);
        let victims = &data[..BATCH];

        macro_rules! bench_index {
            ($name:literal, $ty:ty) => {
                group.bench_with_input(BenchmarkId::new($name, dist.name()), &data, |b, d| {
                    b.iter_batched(
                        || <$ty as SpatialIndex<i64, 2>>::build(d, &universe),
                        |mut index| index.batch_delete(victims),
                        criterion::BatchSize::LargeInput,
                    )
                });
            };
        }
        bench_index!("P-Orth", POrthTree2);
        bench_index!("SPaC-H", SpacHTree<2>);
        bench_index!("Pkd-Tree", PkdTree<2>);
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_delete);
criterion_main!(benches);
