//! Criterion micro-benchmarks: kNN and range queries per index family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psi::{POrthTree2, PkdTree, RTree, SpacHTree, SpacZTree, SpatialIndex, ZdTree};
use psi_workloads::{self as workloads, Distribution};
use std::time::Duration;

const N: usize = 50_000;
const QUERIES: usize = 200;

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn10");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let universe = workloads::universe::<2>(workloads::DEFAULT_MAX_COORD_2D);

    for dist in [Distribution::Uniform, Distribution::Varden] {
        let data = dist.generate::<2>(N, workloads::DEFAULT_MAX_COORD_2D, 42);
        let queries = workloads::ind_queries(&data, QUERIES, 7);

        macro_rules! bench_index {
            ($name:literal, $ty:ty) => {
                let index = <$ty as SpatialIndex<i64, 2>>::build(&data, &universe);
                group.bench_with_input(BenchmarkId::new($name, dist.name()), &queries, |b, qs| {
                    b.iter(|| qs.iter().map(|q| index.knn(q, 10).len()).sum::<usize>())
                });
            };
        }
        bench_index!("P-Orth", POrthTree2);
        bench_index!("SPaC-H", SpacHTree<2>);
        bench_index!("SPaC-Z", SpacZTree<2>);
        bench_index!("Zd-Tree", ZdTree<2>);
        bench_index!("Pkd-Tree", PkdTree<2>);
        bench_index!("Boost-R", RTree<2>);
    }
    group.finish();
}

fn bench_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_list");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let universe = workloads::universe::<2>(workloads::DEFAULT_MAX_COORD_2D);
    let data = Distribution::Uniform.generate::<2>(N, workloads::DEFAULT_MAX_COORD_2D, 42);
    let ranges = workloads::range_queries(&data, workloads::DEFAULT_MAX_COORD_2D, 500, 100, 9);

    macro_rules! bench_index {
        ($name:literal, $ty:ty) => {
            let index = <$ty as SpatialIndex<i64, 2>>::build(&data, &universe);
            group.bench_function($name, |b| {
                b.iter(|| {
                    ranges
                        .iter()
                        .map(|r| index.range_list(r).len())
                        .sum::<usize>()
                })
            });
        };
    }
    bench_index!("P-Orth", POrthTree2);
    bench_index!("SPaC-H", SpacHTree<2>);
    bench_index!("Pkd-Tree", PkdTree<2>);
    bench_index!("Boost-R", RTree<2>);
    group.finish();
}

criterion_group!(benches, bench_knn, bench_range);
criterion_main!(benches);
