//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * **unsorted leaves** — SPaC-trees vs the same tree forced to keep leaves
//!   totally ordered (the CPAM behaviour); the paper's central ablation,
//! * **HybridSort** — fusing SFC-code computation into the first sorting pass
//!   vs pre-computing codes and sorting full records (§4.1),
//! * **λ sweep** — how many levels a single P-Orth sieve pass should build (§C),
//! * **leaf wrap φ sweep** — the block size of the SPaC-tree's leaves (§C).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psi::{HilbertCurve, POrthConfig, POrthTreeGeneric, SpacConfig, SpacHTree, SpacTree};
use psi_workloads::{self as workloads, Distribution};
use std::time::Duration;

const N: usize = 50_000;
const BATCH: usize = 2_000;
const BATCHES: usize = 10;

fn small_group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}

/// SPaC (unsorted leaves) vs CPAM-style (sorted leaves) under a stream of
/// small batch insertions — the operation the relaxation is designed for.
fn ablation_unsorted_leaves(c: &mut Criterion) {
    let mut group = small_group(c, "ablation_unsorted_leaves");
    let data = Distribution::Uniform.generate::<2>(N, workloads::DEFAULT_MAX_COORD_2D, 42);
    let batches: Vec<Vec<_>> = (0..BATCHES)
        .map(|i| workloads::uniform::<2>(BATCH, workloads::DEFAULT_MAX_COORD_2D, 100 + i as u64))
        .collect();

    for (label, sorted) in [("spac_unsorted", false), ("cpam_sorted", true)] {
        let cfg = SpacConfig {
            sorted_leaves: sorted,
            ..SpacConfig::spac()
        };
        group.bench_function(label, |b| {
            b.iter_batched(
                || SpacTree::<HilbertCurve, 2>::build_with_config(&data, cfg),
                |mut tree| {
                    for batch in &batches {
                        tree.batch_insert(batch);
                    }
                    tree.len()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// HybridSort construction vs precompute-then-sort construction.
fn ablation_hybridsort(c: &mut Criterion) {
    let mut group = small_group(c, "ablation_hybridsort");
    let data = Distribution::Uniform.generate::<2>(N * 2, workloads::DEFAULT_MAX_COORD_2D, 43);

    for (label, presort) in [("hybrid_sort", false), ("presort", true)] {
        let cfg = SpacConfig {
            presort,
            ..SpacConfig::spac()
        };
        group.bench_with_input(BenchmarkId::new(label, data.len()), &data, |b, d| {
            b.iter(|| SpacTree::<HilbertCurve, 2>::build_with_config(d, cfg).len())
        });
    }
    group.finish();
}

/// P-Orth skeleton depth λ: how many tree levels one sieve pass builds.
fn ablation_lambda(c: &mut Criterion) {
    let mut group = small_group(c, "ablation_porth_lambda");
    let data = Distribution::Uniform.generate::<2>(N * 2, workloads::DEFAULT_MAX_COORD_2D, 44);
    let universe = workloads::universe::<2>(workloads::DEFAULT_MAX_COORD_2D);

    for lambda in [1usize, 2, 3, 4] {
        let cfg = POrthConfig {
            skeleton_levels: lambda,
            ..POrthConfig::for_dim(2)
        };
        group.bench_with_input(BenchmarkId::new("build", lambda), &data, |b, d| {
            b.iter(|| POrthTreeGeneric::build_with_config(d, universe, cfg).len())
        });
    }
    group.finish();
}

/// SPaC leaf-wrap φ: larger blocks mean fewer interior nodes but more scanning.
fn ablation_leafwrap(c: &mut Criterion) {
    let mut group = small_group(c, "ablation_spac_leafwrap");
    let data = Distribution::Uniform.generate::<2>(N, workloads::DEFAULT_MAX_COORD_2D, 45);
    let queries = workloads::ind_queries(&data, 200, 46);

    for phi in [8usize, 16, 40, 128] {
        let cfg = SpacConfig {
            leaf_cap: phi,
            ..SpacConfig::spac()
        };
        let tree = SpacTree::<HilbertCurve, 2>::build_with_config(&data, cfg);
        group.bench_with_input(BenchmarkId::new("knn10", phi), &queries, |b, qs| {
            b.iter(|| qs.iter().map(|q| tree.knn(q, 10).len()).sum::<usize>())
        });
    }
    // Keep the default-configured type alias exercised.
    let _ = SpacHTree::<2>::build(&data[..100]);
    group.finish();
}

criterion_group!(
    benches,
    ablation_unsorted_leaves,
    ablation_hybridsort,
    ablation_lambda,
    ablation_leafwrap
);
criterion_main!(benches);
