//! Morton (Z-order) curve encoding.
//!
//! The Morton code of a point interleaves the bits of its coordinates, most
//! significant bit first: bit `i` of every coordinate lands in the output word
//! before bit `i-1` of any coordinate. Sorting by Morton code therefore visits
//! the quadrants/octants of the recursive spatial-median decomposition in a
//! fixed Z-shaped order — exactly the order an Orth-tree stores its children —
//! which is why the Zd-tree uses it to linearise construction and why the
//! P-Orth tree's sieve is "conceptually an integer sort on Morton codes"
//! without materialising them (§3).

use crate::{bits_per_dim, SfcCurve};
use psi_geometry::PointI;

/// Marker type implementing [`SfcCurve`] with Morton (Z-order) codes.
#[derive(Default, Clone, Copy, Debug)]
pub struct MortonCurve;

/// Spread the low 32 bits of `x` so that there is one empty bit between every
/// pair of consecutive bits (2-D interleave helper).
#[inline(always)]
pub fn spread_2d(x: u32) -> u64 {
    let mut x = x as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Spread the low 21 bits of `x` so that there are two empty bits between every
/// pair of consecutive bits (3-D interleave helper).
#[inline(always)]
pub fn spread_3d(x: u32) -> u64 {
    let mut x = (x as u64) & 0x1F_FFFF; // 21 bits
    x = (x | (x << 32)) & 0x001F_0000_0000_FFFF;
    x = (x | (x << 16)) & 0x001F_0000_FF00_00FF;
    x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Morton code of a 2-D point with 32-bit coordinates.
#[inline(always)]
pub fn morton2(x: u32, y: u32) -> u64 {
    // y occupies the higher interleaved bit so that the quadrant order is
    // (low-y, low-x), (low-y, high-x), (high-y, low-x), (high-y, high-x) —
    // the conventional "N" / "Z" shape of Fig. 1.
    (spread_2d(y) << 1) | spread_2d(x)
}

/// Morton code of a 3-D point with 21-bit coordinates.
#[inline(always)]
pub fn morton3(x: u32, y: u32, z: u32) -> u64 {
    (spread_3d(z) << 2) | (spread_3d(y) << 1) | spread_3d(x)
}

/// Generic (any `D`) bit-interleaving Morton encoder; slower than the 2-D/3-D
/// specialisations but used for `D > 3` and as the reference implementation in
/// tests.
pub fn morton_generic<const D: usize>(coords: &[u32; D]) -> u64 {
    let bits = bits_per_dim(D);
    let mut code: u64 = 0;
    // Most significant bit first so the order matches the recursive
    // decomposition level by level.
    for bit in (0..bits).rev() {
        for (d, &c) in coords.iter().enumerate().rev() {
            let b = ((c >> bit) & 1) as u64;
            code = (code << 1) | b;
            let _ = d;
        }
    }
    code
}

/// Clamp an `i64` coordinate into the representable unsigned range for `D`
/// dimensions. Negative coordinates clamp to 0; oversized ones saturate.
#[inline(always)]
pub fn clamp_coord(c: i64, bits: u32) -> u32 {
    let max = if bits >= 32 {
        u32::MAX as i64
    } else {
        (1i64 << bits) - 1
    };
    c.clamp(0, max) as u32
}

impl SfcCurve<2> for MortonCurve {
    const NAME: &'static str = "morton";

    #[inline(always)]
    fn encode(p: &PointI<2>) -> u64 {
        let x = clamp_coord(p.coords[0], 32);
        let y = clamp_coord(p.coords[1], 32);
        morton2(x, y)
    }
}

impl SfcCurve<3> for MortonCurve {
    const NAME: &'static str = "morton";

    #[inline(always)]
    fn encode(p: &PointI<3>) -> u64 {
        let b = bits_per_dim(3);
        let x = clamp_coord(p.coords[0], b);
        let y = clamp_coord(p.coords[1], b);
        let z = clamp_coord(p.coords[2], b);
        morton3(x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn spread_2d_basic() {
        assert_eq!(spread_2d(0), 0);
        assert_eq!(spread_2d(1), 1);
        assert_eq!(spread_2d(0b11), 0b101);
        assert_eq!(spread_2d(u32::MAX), 0x5555_5555_5555_5555);
    }

    #[test]
    fn spread_3d_basic() {
        assert_eq!(spread_3d(0), 0);
        assert_eq!(spread_3d(1), 1);
        assert_eq!(spread_3d(0b11), 0b1001);
        assert_eq!(spread_3d(0x1F_FFFF), 0x1249_2492_4924_9249);
    }

    #[test]
    fn morton2_small_grid_matches_z_order() {
        // The 2x2 grid must enumerate in Z order: (0,0) (1,0) (0,1) (1,1).
        assert_eq!(morton2(0, 0), 0);
        assert_eq!(morton2(1, 0), 1);
        assert_eq!(morton2(0, 1), 2);
        assert_eq!(morton2(1, 1), 3);
        // next level of the curve
        assert_eq!(morton2(2, 0), 4);
        assert_eq!(morton2(3, 1), 7);
        assert_eq!(morton2(0, 2), 8);
        assert_eq!(morton2(2, 2), 12);
    }

    #[test]
    fn morton3_small_grid_matches_z_order() {
        assert_eq!(morton3(0, 0, 0), 0);
        assert_eq!(morton3(1, 0, 0), 1);
        assert_eq!(morton3(0, 1, 0), 2);
        assert_eq!(morton3(1, 1, 0), 3);
        assert_eq!(morton3(0, 0, 1), 4);
        assert_eq!(morton3(1, 1, 1), 7);
    }

    #[test]
    fn clamping_is_monotone_and_total() {
        assert_eq!(clamp_coord(-5, 32), 0);
        assert_eq!(clamp_coord(0, 32), 0);
        assert_eq!(clamp_coord(1 << 21, 21), (1 << 21) - 1);
        assert_eq!(clamp_coord(123, 21), 123);
    }

    proptest! {
        #[test]
        fn morton2_matches_generic(x in 0u32.., y in 0u32..) {
            let fast = morton2(x, y);
            let slow = morton_generic::<2>(&[x, y]);
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn morton3_matches_generic(x in 0u32..(1<<21), y in 0u32..(1<<21), z in 0u32..(1<<21)) {
            let fast = morton3(x, y, z);
            let slow = morton_generic::<3>(&[x, y, z]);
            prop_assert_eq!(fast, slow);
        }

        /// The defining Orth-tree compatibility property: the top interleaved
        /// bits of the Morton code identify the quadrant of the spatial-median
        /// split. Points in different quadrants of the root split are ordered
        /// by quadrant id.
        #[test]
        fn morton2_respects_root_quadrants(
            x1 in 0u32..1_000_000_000, y1 in 0u32..1_000_000_000,
            x2 in 0u32..1_000_000_000, y2 in 0u32..1_000_000_000,
        ) {
            let quad = |x: u32, y: u32| ((y >> 31) << 1) | (x >> 31);
            // Use the full 32-bit domain by shifting into the top half for some points.
            let (x1, y1, x2, y2) = (x1 << 2, y1 << 2, x2 << 2, y2 << 2);
            let q1 = quad(x1, y1);
            let q2 = quad(x2, y2);
            if q1 < q2 {
                prop_assert!(morton2(x1, y1) < morton2(x2, y2));
            }
        }

        /// Strictly monotone along each axis when the other coordinate is
        /// fixed: interleaving keeps the per-axis bits in order.
        #[test]
        fn morton2_is_monotone_on_axis(x in 0u32..u32::MAX, y in 0u32..) {
            prop_assert!(morton2(x, y) < morton2(x + 1, y));
            // And the exact bit-level identity behind it.
            prop_assert_eq!(morton2(x, y) ^ morton2(x + 1, y), spread_2d(x) ^ spread_2d(x + 1));
        }
    }
}
