//! Space-filling curves (SFCs) for Ψ-Lib-rs.
//!
//! The paper's SFC-based indexes (Zd-tree, SPaC-Z, SPaC-H, CPAM-Z, CPAM-H)
//! order points by their **Morton (Z) code** or **Hilbert code** (Fig. 1). This
//! crate provides both codecs for 2-D and 3-D integer coordinates, matching the
//! precision budget the paper discusses in §3 ("Applicability"):
//!
//! * 2-D: 32 bits per dimension → a 64-bit code,
//! * 3-D: 21 bits per dimension → a 63-bit code.
//!
//! The paper's evaluation uses coordinates in `[0, 10^9]` (2-D, < 2^30) and
//! `[0, 10^6]` (3-D, < 2^20), so both fit comfortably.
//!
//! Codes are produced as `u64` and are *compared only* — no arithmetic is ever
//! done on them — so any monotone embedding works. The defining property (and
//! the one the property tests check) is that sorting by code yields the same
//! order as walking the recursive space decomposition.

pub mod hilbert;
pub mod morton;

pub use hilbert::HilbertCurve;
pub use morton::MortonCurve;

use psi_geometry::PointI;

/// Number of bits of precision used per dimension for `D`-dimensional codes.
///
/// 2-D uses 32 bits/dim (full 64-bit code); 3-D and above use `63 / D` bits so
/// the code still fits in a `u64` word, mirroring the paper's discussion of
/// the 64-bit word constraint.
pub const fn bits_per_dim(d: usize) -> u32 {
    if d <= 2 {
        32
    } else {
        (63 / d) as u32
    }
}

/// A space-filling-curve codec: maps a `D`-dimensional integer point to a
/// one-dimensional `u64` key.
///
/// Implementations must be **monotone in the curve order**: sorting points by
/// `encode` must equal the order induced by the recursive traversal of the
/// curve. Coordinates must be non-negative and fit in [`bits_per_dim`]`(D)`
/// bits; the paper's workloads satisfy this by construction, and the encoders
/// clamp out-of-range coordinates rather than wrapping (a clamped code is still
/// a valid, deterministic key — the index remains correct, only the locality of
/// the affected points degrades, which is the same fallback behaviour the paper
/// describes for precision exhaustion).
pub trait SfcCurve<const D: usize>: Send + Sync + Default + Clone + 'static {
    /// Human-readable curve name ("morton" / "hilbert"), used in benchmark output.
    const NAME: &'static str;

    /// Encode a point into its 1-D curve key.
    fn encode(p: &PointI<D>) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_budget() {
        assert_eq!(bits_per_dim(2), 32);
        assert_eq!(bits_per_dim(3), 21);
        assert_eq!(bits_per_dim(4), 15);
        // total bits never exceed the word size
        for d in 2..=8 {
            assert!(bits_per_dim(d) * d as u32 <= 64);
        }
    }
}
