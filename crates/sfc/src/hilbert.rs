//! Hilbert curve encoding.
//!
//! The Hilbert curve is the second SFC used by the paper (SPaC-H, CPAM-H).
//! Unlike the Morton curve, consecutive positions along a Hilbert curve are
//! always geometrically adjacent (unit L1 distance on the integer grid), which
//! is why the paper finds SPaC-H markedly faster than SPaC-Z for queries
//! (§5.1.3) at a small extra encoding cost.
//!
//! The encoder uses Skilling's transpose algorithm ("Programming the Hilbert
//! curve", AIP 2004), which works for any dimension `D` and any per-dimension
//! bit budget `b`, followed by a bit-interleave of the transposed form into a
//! single `u64` key. Correctness is established by the property tests at the
//! bottom of this file: on a full `2^k`-sided grid the codes are a bijection
//! and consecutive codes are grid-adjacent — the two defining properties of a
//! Hilbert enumeration.

use crate::{bits_per_dim, morton::clamp_coord, SfcCurve};
use psi_geometry::PointI;

/// Marker type implementing [`SfcCurve`] with Hilbert codes.
#[derive(Default, Clone, Copy, Debug)]
pub struct HilbertCurve;

/// Skilling's "axes to transpose" in-place transform.
///
/// On input, `x[i]` holds the `bits`-bit coordinate along dimension `i`. On
/// output, the bits of the Hilbert index are distributed ("transposed") across
/// the words: bit `j` of the index (counting from the most significant) is bit
/// `bits - 1 - j / D` of `x[j % D]`.
pub fn axes_to_transpose<const D: usize>(x: &mut [u32; D], bits: u32) {
    if bits == 0 || D < 2 {
        return;
    }
    let m: u32 = 1 << (bits - 1);

    // Inverse undo of the Gray-code/rotation structure, one level at a time.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..D {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of the first axis
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }

    // Gray-encode across dimensions.
    for i in 1..D {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = m;
    while q > 1 {
        if x[D - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

/// Interleave a transposed Hilbert representation into a single `u64` key,
/// most significant bit plane first.
pub fn transpose_to_key<const D: usize>(x: &[u32; D], bits: u32) -> u64 {
    let mut key: u64 = 0;
    for bit in (0..bits).rev() {
        for xi in x.iter() {
            key = (key << 1) | (((xi >> bit) & 1) as u64);
        }
    }
    key
}

/// Hilbert key of a `D`-dimensional point whose coordinates each fit in `bits` bits.
pub fn hilbert_key<const D: usize>(coords: [u32; D], bits: u32) -> u64 {
    let mut x = coords;
    axes_to_transpose::<D>(&mut x, bits);
    transpose_to_key::<D>(&x, bits)
}

impl SfcCurve<2> for HilbertCurve {
    const NAME: &'static str = "hilbert";

    #[inline]
    fn encode(p: &PointI<2>) -> u64 {
        let b = bits_per_dim(2);
        let x = clamp_coord(p.coords[0], b);
        let y = clamp_coord(p.coords[1], b);
        hilbert_key::<2>([x, y], b)
    }
}

impl SfcCurve<3> for HilbertCurve {
    const NAME: &'static str = "hilbert";

    #[inline]
    fn encode(p: &PointI<3>) -> u64 {
        let b = bits_per_dim(3);
        let x = clamp_coord(p.coords[0], b);
        let y = clamp_coord(p.coords[1], b);
        let z = clamp_coord(p.coords[2], b);
        hilbert_key::<3>([x, y, z], b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    /// Enumerate every point of a `side x side` grid (2-D), sort by Hilbert
    /// key, and check the two defining properties: the keys are all distinct
    /// (bijection) and consecutive points along the curve are grid-adjacent.
    fn check_grid_2d(k: u32, bits: u32) {
        let side = 1i64 << k;
        let mut pts: Vec<(u64, i64, i64)> = Vec::new();
        for x in 0..side {
            for y in 0..side {
                let key = hilbert_key::<2>([x as u32, y as u32], bits);
                pts.push((key, x, y));
            }
        }
        let keys: HashSet<u64> = pts.iter().map(|p| p.0).collect();
        assert_eq!(keys.len(), pts.len(), "Hilbert keys must be distinct");
        pts.sort();
        for w in pts.windows(2) {
            let (_, x0, y0) = w[0];
            let (_, x1, y1) = w[1];
            let l1 = (x1 - x0).abs() + (y1 - y0).abs();
            assert_eq!(
                l1, 1,
                "consecutive Hilbert positions must be grid-adjacent: ({x0},{y0}) -> ({x1},{y1})"
            );
        }
    }

    fn check_grid_3d(k: u32, bits: u32) {
        let side = 1i64 << k;
        let mut pts: Vec<(u64, [i64; 3])> = Vec::new();
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    let key = hilbert_key::<3>([x as u32, y as u32, z as u32], bits);
                    pts.push((key, [x, y, z]));
                }
            }
        }
        let keys: HashSet<u64> = pts.iter().map(|p| p.0).collect();
        assert_eq!(keys.len(), pts.len());
        pts.sort();
        for w in pts.windows(2) {
            let a = w[0].1;
            let b = w[1].1;
            let l1: i64 = (0..3).map(|d| (a[d] - b[d]).abs()).sum();
            assert_eq!(l1, 1, "consecutive 3-D Hilbert positions must be adjacent");
        }
    }

    #[test]
    fn hilbert_2d_adjacency_small_orders() {
        // Curve order equals the grid order: the canonical definition.
        check_grid_2d(1, 1);
        check_grid_2d(2, 2);
        check_grid_2d(3, 3);
        check_grid_2d(4, 4);
    }

    #[test]
    fn hilbert_2d_adjacency_embedded_in_larger_domain() {
        // The paper encodes with a fixed 32-bit budget regardless of the data
        // extent; the origin-anchored sub-grid must still be one contiguous,
        // adjacent run of the big curve.
        check_grid_2d(3, 8);
        check_grid_2d(4, 16);
    }

    #[test]
    fn hilbert_3d_adjacency() {
        check_grid_3d(1, 1);
        check_grid_3d(2, 2);
        check_grid_3d(3, 3);
    }

    #[test]
    fn hilbert_3d_adjacency_embedded() {
        check_grid_3d(2, 7);
    }

    #[test]
    fn origin_is_curve_start() {
        assert_eq!(hilbert_key::<2>([0, 0], 32), 0);
        assert_eq!(hilbert_key::<3>([0, 0, 0], 21), 0);
    }

    #[test]
    fn full_encoder_matches_raw_key() {
        let p = PointI::<2>::new([123_456_789, 987_654_321]);
        assert_eq!(
            <HilbertCurve as SfcCurve<2>>::encode(&p),
            hilbert_key::<2>([123_456_789, 987_654_321], 32)
        );
    }

    #[test]
    fn out_of_range_coordinates_clamp_deterministically() {
        let p_neg = PointI::<2>::new([-5, 7]);
        let p_zero = PointI::<2>::new([0, 7]);
        assert_eq!(
            <HilbertCurve as SfcCurve<2>>::encode(&p_neg),
            <HilbertCurve as SfcCurve<2>>::encode(&p_zero)
        );
    }

    proptest! {
        /// Distinct points in the supported domain get distinct keys (encode is
        /// injective at full precision).
        #[test]
        fn injective_2d(x1 in 0u32.., y1 in 0u32.., x2 in 0u32.., y2 in 0u32..) {
            prop_assume!((x1, y1) != (x2, y2));
            prop_assert_ne!(hilbert_key::<2>([x1, y1], 32), hilbert_key::<2>([x2, y2], 32));
        }

        #[test]
        fn injective_3d(
            a in 0u32..(1 << 21), b in 0u32..(1 << 21), c in 0u32..(1 << 21),
            d in 0u32..(1 << 21), e in 0u32..(1 << 21), f in 0u32..(1 << 21),
        ) {
            prop_assume!((a, b, c) != (d, e, f));
            prop_assert_ne!(
                hilbert_key::<3>([a, b, c], 21),
                hilbert_key::<3>([d, e, f], 21)
            );
        }

        /// The first quadrant visited (points in the low half of both axes,
        /// which contains the curve start at the origin) always precedes the
        /// diagonal quadrant's points.
        #[test]
        fn first_quadrant_precedes_diagonal(
            x1 in 0u32..(1 << 31), y1 in 0u32..(1 << 31),
            x2 in (1u32 << 31).., y2 in (1u32 << 31)..,
        ) {
            prop_assert!(hilbert_key::<2>([x1, y1], 32) < hilbert_key::<2>([x2, y2], 32));
        }
    }
}
