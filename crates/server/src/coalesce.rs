//! Request coalescing: fold many clients' individual point queries into the
//! batched query paths.
//!
//! Each query the paper's batch APIs answer costs one pool-job dispatch
//! (`knn_batch` / `range_count_batch` / `range_list_batch` amortise that
//! over thousands of queries). A serving front-end receives queries one at
//! a time from many client threads — dispatching each individually would
//! pay the batch machinery per query. The [`Coalescer`] sits in between:
//!
//! * clients enqueue a request plus a one-shot reply channel and block on
//!   the reply ([`CoalesceHandle::knn`] and friends),
//! * one **flusher** thread drains the queue (up to `max_batch` requests
//!   per flush), pins a single [`RouterView`](crate::router::RouterView)
//!   for the whole flush, groups
//!   the requests by operation (and by `k` for kNN), answers each group
//!   through one batched call, and distributes the replies.
//!
//! Every request in one flush is answered against the *same* pinned view,
//! so a flush is per-shard epoch-consistent. Under load the queue fills
//! while a flush runs and the next flush drains a large batch — the
//! coalescing window grows with load and shrinks to a single request when
//! idle (no artificial latency is added: the flusher sleeps only when the
//! queue is empty).

use crate::router::ServeCoord;
use crate::Router;
use psi_geometry::{Point, Rect};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};

enum Op<T: ServeCoord, const D: usize> {
    Knn(Point<T, D>, usize),
    RangeCount(Rect<T, D>),
    RangeList(Rect<T, D>),
}

enum Reply<T: ServeCoord, const D: usize> {
    Points(Vec<Point<T, D>>),
    Count(usize),
}

struct Pending<T: ServeCoord, const D: usize> {
    op: Op<T, D>,
    reply: mpsc::SyncSender<Reply<T, D>>,
}

struct QueueState<T: ServeCoord, const D: usize> {
    buf: Vec<Pending<T, D>>,
    shutdown: bool,
}

/// Shared client/flusher state.
pub struct Coalescer<T: ServeCoord, const D: usize> {
    queue: Mutex<QueueState<T, D>>,
    ready: Condvar,
    /// Flushes executed (for the batching-factor statistic).
    flushes: AtomicU64,
    /// Requests answered.
    served: AtomicU64,
}

impl<T: ServeCoord, const D: usize> Coalescer<T, D> {
    pub(crate) fn new() -> Self {
        Coalescer {
            queue: Mutex::new(QueueState {
                buf: Vec::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            flushes: AtomicU64::new(0),
            served: AtomicU64::new(0),
        }
    }

    /// Requests answered so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Batched flushes executed so far. `served / flushes` is the achieved
    /// coalescing factor.
    pub fn flushes(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    pub(crate) fn request_stop(&self) {
        self.queue.lock().unwrap().shutdown = true;
        self.ready.notify_all();
    }

    /// The flusher loop: drain, pin one view, batch, reply. Returns when
    /// shutdown is requested and the queue has fully drained.
    pub(crate) fn run_flusher(&self, router: &Router<T, D>, max_batch: usize) {
        loop {
            let batch: Vec<Pending<T, D>> = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if !q.buf.is_empty() {
                        let take = q.buf.len().min(max_batch.max(1));
                        break q.buf.drain(..take).collect();
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.ready.wait(q).unwrap();
                }
            };
            self.flush(router, batch);
        }
    }

    fn flush(&self, router: &Router<T, D>, batch: Vec<Pending<T, D>>) {
        let view = router.pin();
        self.flushes.fetch_add(1, Ordering::Relaxed);
        self.served.fetch_add(batch.len() as u64, Ordering::Relaxed);

        // Group by operation; kNN additionally by k (one batched call per
        // distinct k in the flush).
        let mut knn: HashMap<usize, (Vec<Point<T, D>>, Vec<usize>)> = HashMap::new();
        let mut counts: (Vec<Rect<T, D>>, Vec<usize>) = Default::default();
        let mut lists: (Vec<Rect<T, D>>, Vec<usize>) = Default::default();
        for (slot, p) in batch.iter().enumerate() {
            match &p.op {
                Op::Knn(q, k) => {
                    let g = knn.entry(*k).or_default();
                    g.0.push(*q);
                    g.1.push(slot);
                }
                Op::RangeCount(r) => {
                    counts.0.push(*r);
                    counts.1.push(slot);
                }
                Op::RangeList(r) => {
                    lists.0.push(*r);
                    lists.1.push(slot);
                }
            }
        }

        let send = |slot: usize, reply: Reply<T, D>| {
            // A client that gave up (dropped its receiver) is not an error.
            let _ = batch[slot].reply.send(reply);
        };
        let mut ks: Vec<usize> = knn.keys().copied().collect();
        ks.sort_unstable();
        for k in ks {
            let (qs, slots) = &knn[&k];
            for (ans, &slot) in view.knn_batch(qs, k).into_iter().zip(slots) {
                send(slot, Reply::Points(ans));
            }
        }
        if !counts.0.is_empty() {
            for (c, &slot) in view.range_count_batch(&counts.0).into_iter().zip(&counts.1) {
                send(slot, Reply::Count(c));
            }
        }
        if !lists.0.is_empty() {
            for (ans, &slot) in view.range_list_batch(&lists.0).into_iter().zip(&lists.1) {
                send(slot, Reply::Points(ans));
            }
        }
    }
}

/// A cloneable client handle; each call enqueues one request and blocks
/// until the flusher answers it. Handles must not outlive the server (a
/// request submitted after shutdown panics rather than hanging).
pub struct CoalesceHandle<T: ServeCoord, const D: usize> {
    pub(crate) shared: Arc<Coalescer<T, D>>,
}

impl<T: ServeCoord, const D: usize> Clone for CoalesceHandle<T, D> {
    fn clone(&self) -> Self {
        CoalesceHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: ServeCoord, const D: usize> CoalesceHandle<T, D> {
    fn request(&self, op: Op<T, D>) -> Reply<T, D> {
        let (tx, rx) = mpsc::sync_channel(1);
        {
            let mut q = self.shared.queue.lock().unwrap();
            assert!(
                !q.shutdown,
                "psi-server client used after the server shut down"
            );
            q.buf.push(Pending { op, reply: tx });
        }
        self.shared.ready.notify_all();
        rx.recv()
            .expect("the psi-server flusher answers every queued request")
    }

    /// The `k` nearest stored neighbours of `q`, closest first.
    pub fn knn(&self, q: &Point<T, D>, k: usize) -> Vec<Point<T, D>> {
        if k == 0 {
            return Vec::new();
        }
        match self.request(Op::Knn(*q, k)) {
            Reply::Points(p) => p,
            Reply::Count(_) => unreachable!("knn requests get point replies"),
        }
    }

    /// Number of stored points in the closed box.
    pub fn range_count(&self, rect: &Rect<T, D>) -> usize {
        match self.request(Op::RangeCount(*rect)) {
            Reply::Count(c) => c,
            Reply::Points(_) => unreachable!("count requests get count replies"),
        }
    }

    /// The stored points in the closed box (shard order).
    pub fn range_list(&self, rect: &Rect<T, D>) -> Vec<Point<T, D>> {
        match self.request(Op::RangeList(*rect)) {
            Reply::Points(p) => p,
            Reply::Count(_) => unreachable!("list requests get point replies"),
        }
    }
}
