//! Request coalescing: fold many clients' individual point queries into the
//! batched query paths.
//!
//! Each query the paper's batch APIs answer costs one pool-job dispatch
//! (`knn_batch` / `range_count_batch` / `range_list_batch` amortise that
//! over thousands of queries). A serving front-end receives queries one at
//! a time from many client threads — dispatching each individually would
//! pay the batch machinery per query. The [`Coalescer`] sits in between:
//!
//! * clients enqueue a request plus a one-shot reply channel and block on
//!   the reply ([`CoalesceHandle::knn`] and friends),
//! * one **flusher** thread drains the queue (up to `max_batch` requests
//!   per flush), pins a single [`RouterView`](crate::router::RouterView)
//!   for the whole flush, groups
//!   the requests by operation (and by `k` for kNN), answers each group
//!   through one batched call, and distributes the replies.
//!
//! Every request in one flush is answered against the *same* pinned view,
//! so a flush is per-shard epoch-consistent. Under load the queue fills
//! while a flush runs and the next flush drains a large batch — the
//! coalescing window grows with load and shrinks to a single request when
//! idle (no artificial latency is added: the flusher sleeps only when the
//! queue is empty).
//!
//! Requests may carry an **"as of epoch N"** tag ([`CoalesceHandle::knn_at`]
//! and friends): the flusher groups each flush by requested epoch and
//! answers every group against that epoch's retained view
//! ([`Router::pin_at`]), falling back to [`QueryReply::EpochGone`] when the
//! epoch has been evicted from the history window (or the serving family
//! keeps no history). Untagged requests keep using the freshly pinned
//! current view.

use crate::router::{RouterView, ServeCoord};
use crate::Router;
use psi_geometry::{Point, Rect};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};

/// Requests answered through the coalescer, process-wide.
static OBS_SERVED: psi_obs::LazyCounter = psi_obs::LazyCounter::new(
    "psi_serve_requests_total",
    "queries answered through the coalescer",
);
/// Batched flushes executed, process-wide (`requests/flushes` is the
/// achieved coalescing factor).
static OBS_FLUSHES: psi_obs::LazyCounter = psi_obs::LazyCounter::new(
    "psi_serve_flushes_total",
    "batched coalescer flushes executed",
);
/// Requests folded into each flush.
static OBS_FLUSH_SIZE: psi_obs::LazyHistogram = psi_obs::LazyHistogram::new(
    "psi_serve_coalesce_flush_size",
    "requests folded into one coalescer flush",
);

/// One point query, as the coalescer buffers it. Public so socket front-ends
/// (the `psi-net` crate) can enqueue decoded wire requests directly.
pub enum QueryOp<T: ServeCoord, const D: usize> {
    /// `k` nearest neighbours of a point.
    Knn(Point<T, D>, usize),
    /// Number of stored points in a closed box.
    RangeCount(Rect<T, D>),
    /// The stored points in a closed box.
    RangeList(Rect<T, D>),
}

/// The answer to a [`QueryOp`].
pub enum QueryReply<T: ServeCoord, const D: usize> {
    /// kNN / range-list answers.
    Points(Vec<Point<T, D>>),
    /// Range-count answers.
    Count(usize),
    /// The requested epoch is outside the server's history window — evicted,
    /// never published, or the serving family keeps no history at all.
    EpochGone,
}

/// How a buffered request's answer is delivered: a blocking one-shot channel
/// (the [`CoalesceHandle`] convenience calls) or a callback invoked on the
/// flusher thread (nonblocking submitters — the event-loop transport — which
/// must never park a reactor thread waiting on a reply).
pub enum Completion<T: ServeCoord, const D: usize> {
    /// Deliver through a one-shot channel; the submitter blocks on it.
    Channel(mpsc::SyncSender<QueryReply<T, D>>),
    /// Invoke on the flusher thread once the answer is computed. Keep the
    /// callback cheap (encode + hand off) — it runs inside the flush.
    Callback(Box<dyn FnOnce(QueryReply<T, D>) + Send>),
}

impl<T: ServeCoord, const D: usize> Completion<T, D> {
    fn deliver(self, reply: QueryReply<T, D>) {
        match self {
            // A client that gave up (dropped its receiver) is not an error.
            Completion::Channel(tx) => drop(tx.send(reply)),
            Completion::Callback(f) => f(reply),
        }
    }
}

struct Pending<T: ServeCoord, const D: usize> {
    op: QueryOp<T, D>,
    /// `Some(e)` answers against the retained view of global epoch `e`;
    /// `None` answers against the current view.
    at: Option<u64>,
    done: Option<Completion<T, D>>,
}

struct QueueState<T: ServeCoord, const D: usize> {
    buf: Vec<Pending<T, D>>,
    shutdown: bool,
}

/// Shared client/flusher state.
pub struct Coalescer<T: ServeCoord, const D: usize> {
    queue: Mutex<QueueState<T, D>>,
    ready: Condvar,
    /// Flushes executed (for the batching-factor statistic).
    flushes: AtomicU64,
    /// Requests answered.
    served: AtomicU64,
}

impl<T: ServeCoord, const D: usize> Coalescer<T, D> {
    pub(crate) fn new() -> Self {
        Coalescer {
            queue: Mutex::new(QueueState {
                buf: Vec::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            flushes: AtomicU64::new(0),
            served: AtomicU64::new(0),
        }
    }

    /// Requests answered so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Batched flushes executed so far. `served / flushes` is the achieved
    /// coalescing factor.
    pub fn flushes(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    pub(crate) fn request_stop(&self) {
        self.queue.lock().unwrap().shutdown = true;
        self.ready.notify_all();
    }

    /// The flusher loop: drain, pin one view, batch, reply. Returns when
    /// shutdown is requested and the queue has fully drained.
    pub(crate) fn run_flusher(&self, router: &Router<T, D>, max_batch: usize) {
        loop {
            let batch: Vec<Pending<T, D>> = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if !q.buf.is_empty() {
                        let take = q.buf.len().min(max_batch.max(1));
                        break q.buf.drain(..take).collect();
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.ready.wait(q).unwrap();
                }
            };
            self.flush(router, batch);
        }
    }

    fn flush(&self, router: &Router<T, D>, mut batch: Vec<Pending<T, D>>) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
        self.served.fetch_add(batch.len() as u64, Ordering::Relaxed);
        OBS_FLUSHES.bump();
        OBS_SERVED.add(batch.len() as u64);
        OBS_FLUSH_SIZE.record(batch.len() as u64);

        // Group the flush by requested epoch — the common all-current flush
        // makes exactly one group and pins exactly one view, as before.
        let mut ats: Vec<Option<u64>> = batch.iter().map(|p| p.at).collect();
        ats.sort_unstable();
        ats.dedup();
        for at in ats {
            let slots: Vec<usize> = (0..batch.len()).filter(|&s| batch[s].at == at).collect();
            let view = match at {
                None => Some(router.pin()),
                Some(epoch) => router.pin_at(epoch),
            };
            match view {
                Some(view) => Self::answer(&view, &mut batch, &slots),
                None => {
                    for &slot in &slots {
                        Self::send(&mut batch, slot, QueryReply::EpochGone);
                    }
                }
            }
        }
    }

    fn send(batch: &mut [Pending<T, D>], slot: usize, reply: QueryReply<T, D>) {
        batch[slot]
            .done
            .take()
            .expect("each flush slot answered once")
            .deliver(reply);
    }

    /// Answer the `slots` of `batch` against one pinned view, grouped by
    /// operation; kNN additionally by k (one batched call per distinct k).
    fn answer(view: &RouterView<T, D>, batch: &mut [Pending<T, D>], slots: &[usize]) {
        let mut knn: HashMap<usize, (Vec<Point<T, D>>, Vec<usize>)> = HashMap::new();
        let mut counts: (Vec<Rect<T, D>>, Vec<usize>) = Default::default();
        let mut lists: (Vec<Rect<T, D>>, Vec<usize>) = Default::default();
        for &slot in slots {
            match &batch[slot].op {
                QueryOp::Knn(q, k) => {
                    let g = knn.entry(*k).or_default();
                    g.0.push(*q);
                    g.1.push(slot);
                }
                QueryOp::RangeCount(r) => {
                    counts.0.push(*r);
                    counts.1.push(slot);
                }
                QueryOp::RangeList(r) => {
                    lists.0.push(*r);
                    lists.1.push(slot);
                }
            }
        }

        let mut ks: Vec<usize> = knn.keys().copied().collect();
        ks.sort_unstable();
        for k in ks {
            let (qs, slots) = &knn[&k];
            for (ans, &slot) in view.knn_batch(qs, k).into_iter().zip(slots) {
                Self::send(batch, slot, QueryReply::Points(ans));
            }
        }
        if !counts.0.is_empty() {
            let answers = view.range_count_batch(&counts.0);
            for (c, &slot) in answers.into_iter().zip(&counts.1) {
                Self::send(batch, slot, QueryReply::Count(c));
            }
        }
        if !lists.0.is_empty() {
            let answers = view.range_list_batch(&lists.0);
            for (ans, &slot) in answers.into_iter().zip(&lists.1) {
                Self::send(batch, slot, QueryReply::Points(ans));
            }
        }
    }
}

/// A cloneable client handle; each call enqueues one request and blocks
/// until the flusher answers it. Handles must not outlive the server (a
/// request submitted after shutdown panics rather than hanging).
pub struct CoalesceHandle<T: ServeCoord, const D: usize> {
    pub(crate) shared: Arc<Coalescer<T, D>>,
}

impl<T: ServeCoord, const D: usize> Clone for CoalesceHandle<T, D> {
    fn clone(&self) -> Self {
        CoalesceHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: ServeCoord, const D: usize> CoalesceHandle<T, D> {
    /// Enqueue one request for the next flush, delivering the answer through
    /// `done`. The nonblocking building block under the blocking convenience
    /// calls; socket front-ends use it with [`Completion::Callback`] so a
    /// reactor thread never parks waiting on the flusher.
    pub fn submit(&self, op: QueryOp<T, D>, done: Completion<T, D>) {
        self.submit_at(op, None, done);
    }

    /// As [`CoalesceHandle::submit`], answering against global epoch `at`
    /// when given (`QueryReply::EpochGone` if the epoch is not retained).
    pub fn submit_at(&self, op: QueryOp<T, D>, at: Option<u64>, done: Completion<T, D>) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            assert!(
                !q.shutdown,
                "psi-server client used after the server shut down"
            );
            q.buf.push(Pending {
                op,
                at,
                done: Some(done),
            });
        }
        self.shared.ready.notify_all();
    }

    fn request(&self, op: QueryOp<T, D>, at: Option<u64>) -> QueryReply<T, D> {
        let (tx, rx) = mpsc::sync_channel(1);
        self.submit_at(op, at, Completion::Channel(tx));
        rx.recv()
            .expect("the psi-server flusher answers every queued request")
    }

    /// The `k` nearest stored neighbours of `q`, closest first.
    pub fn knn(&self, q: &Point<T, D>, k: usize) -> Vec<Point<T, D>> {
        if k == 0 {
            return Vec::new();
        }
        match self.request(QueryOp::Knn(*q, k), None) {
            QueryReply::Points(p) => p,
            _ => unreachable!("knn requests get point replies"),
        }
    }

    /// Number of stored points in the closed box.
    pub fn range_count(&self, rect: &Rect<T, D>) -> usize {
        match self.request(QueryOp::RangeCount(*rect), None) {
            QueryReply::Count(c) => c,
            _ => unreachable!("count requests get count replies"),
        }
    }

    /// The stored points in the closed box (shard order).
    pub fn range_list(&self, rect: &Rect<T, D>) -> Vec<Point<T, D>> {
        match self.request(QueryOp::RangeList(*rect), None) {
            QueryReply::Points(p) => p,
            _ => unreachable!("list requests get point replies"),
        }
    }

    /// Time-travel kNN: the `k` nearest neighbours as of global `epoch`.
    /// `None` when the epoch is outside the retained history window.
    pub fn knn_at(&self, q: &Point<T, D>, k: usize, epoch: u64) -> Option<Vec<Point<T, D>>> {
        if k == 0 {
            return Some(Vec::new());
        }
        match self.request(QueryOp::Knn(*q, k), Some(epoch)) {
            QueryReply::Points(p) => Some(p),
            QueryReply::EpochGone => None,
            QueryReply::Count(_) => unreachable!("knn requests get point replies"),
        }
    }

    /// Time-travel range count as of global `epoch` (`None` if evicted).
    pub fn range_count_at(&self, rect: &Rect<T, D>, epoch: u64) -> Option<usize> {
        match self.request(QueryOp::RangeCount(*rect), Some(epoch)) {
            QueryReply::Count(c) => Some(c),
            QueryReply::EpochGone => None,
            QueryReply::Points(_) => unreachable!("count requests get count replies"),
        }
    }

    /// Time-travel range list as of global `epoch` (`None` if evicted).
    pub fn range_list_at(&self, rect: &Rect<T, D>, epoch: u64) -> Option<Vec<Point<T, D>>> {
        match self.request(QueryOp::RangeList(*rect), Some(epoch)) {
            QueryReply::Points(p) => Some(p),
            QueryReply::EpochGone => None,
            QueryReply::Count(_) => unreachable!("list requests get point replies"),
        }
    }
}
