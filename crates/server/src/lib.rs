//! **psi-server** — the concurrent query-serving subsystem of Ψ-Lib-rs.
//!
//! The paper's indexes are batch-parallel data structures driven, until this
//! crate, by single-threaded harnesses: one logical client, updates and
//! queries strictly interleaved. `psi-server` turns them into a serving
//! system — many reader threads querying *while* batch writers publish —
//! without ever exposing a torn batch:
//!
//! * [`shard`] — **epoch-published snapshots**: batches apply on the writer
//!   side and an atomic pointer swap publishes a new epoch. Readers pin a
//!   snapshot and query it lock-free; they observe whole epochs only, never
//!   an index mid-batch. Families with a persistent (path-copying) backbone
//!   — the CPAM/SPaC PaC-trees — keep **one** live tree and publish `O(1)`
//!   structural-sharing snapshots (no standby copy, writer never waits on
//!   readers); everything else falls back to the classic left-right double
//!   buffer with a parked (not spinning) standby-reclaim wait.
//! * [`router`] — a **spatial shard router**: the domain is striped along
//!   dimension 0 across shards; updates split per stripe, range queries
//!   fan out to intersecting stripes and merge by sum/concatenation, and
//!   kNN does a pruned best-`k` merge across stripes (batched: home-shard
//!   phase + spill phase, one batch dispatch per shard per phase).
//! * [`coalesce`] — a **request coalescer**: individual queries from many
//!   client threads are buffered and flushed through the existing
//!   `knn_batch` / `range_count_batch` / `range_list_batch` paths, so the
//!   worker-pool dispatch cost is amortised over the whole flush; the
//!   batching window grows with load and adds no latency when idle.
//!
//! [`PsiServer`] assembles the three: it owns the router, a writer thread
//! consuming update batches from a bounded channel (back-pressure, not
//! unbounded queueing), and the coalescer's flusher thread. Everything is
//! std threads + channels riding the workspace's rayon-shim pool for the
//! batched query execution — no async runtime. [`loadgen`] adds the shared
//! closed-loop driver (clients × move-batch writer with a count-conservation
//! check) behind `bench_serve` and the scenario harness's `[serve]` phase.
//!
//! Persistent routers additionally retain a bounded window of recent global
//! epochs ([`ServeConfig::epoch_history`]): [`PsiServer::view_at`] and the
//! `*_at` client calls answer **"as of epoch N"** time-travel queries from
//! it, bit-identical to what a reader pinned at that epoch would have seen.
//!
//! ```
//! use psi::registry::{self, BuildOptions};
//! use psi::workloads;
//! use psi_server::{PsiServer, ServeConfig};
//! use std::sync::Arc;
//!
//! let max = 100_000;
//! let data = workloads::uniform::<2>(4_000, max, 7);
//! let universe = workloads::universe::<2>(max);
//! let factory = Arc::new(move |pts: &[psi::PointI<2>]| {
//!     registry::create::<2>("spac-h", pts, &BuildOptions::default()).unwrap()
//! });
//! let server = PsiServer::new(&data, &universe, ServeConfig::default(), factory);
//!
//! // Clients are cheap cloneable handles; calls block until answered.
//! let client = server.client();
//! let answer = client.knn(&psi::Point::new([50_000, 50_000]), 8);
//! assert_eq!(answer.len(), 8);
//!
//! // Writers submit batches; readers keep querying while they apply.
//! server.submit(data[..10].to_vec(), Vec::new());
//! server.quiesce();
//! assert_eq!(server.view().len(), 3_990);
//! server.shutdown();
//! ```

pub mod coalesce;
pub mod durability;
pub mod loadgen;
pub mod router;
pub mod shard;
pub mod wal;

pub use coalesce::{CoalesceHandle, Coalescer, Completion, QueryOp, QueryReply};
pub use durability::DurabilityConfig;
pub use loadgen::{closed_loop, closed_loop_with, LoadOutcome, LoadSpec, QueryClient};
pub use router::{Router, RouterView, ServeCoord, DEFAULT_EPOCH_HISTORY};
pub use shard::{IndexFactory, Shard, Snapshot, SnapshotRef};
pub use wal::FsyncPolicy;

use durability::{checkpoint_path, wal_path};
use psi_geometry::{Point, Rect, WireCoord};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use wal::WalWriter;

/// Update batches submitted but not yet published, process-wide (the
/// writer-queue depth plus the batch currently being applied).
static OBS_QUEUE_DEPTH: psi_obs::LazyGauge = psi_obs::LazyGauge::new(
    "psi_serve_writer_queue_depth",
    "update batches submitted but not yet published",
);
/// Wall time of one durable checkpoint (WAL sync + snapshot + fresh
/// generation + retirement).
static OBS_CKPT: psi_obs::LazyHistogram = psi_obs::LazyHistogram::new(
    "psi_serve_checkpoint_duration_ns",
    "wall time of one durable checkpoint",
);

/// Tuning knobs of a [`PsiServer`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Spatial shards (dimension-0 stripes). Default 1.
    pub shards: usize,
    /// Maximum requests the coalescer folds into one batched flush.
    /// Default 64.
    pub coalesce_max_batch: usize,
    /// Capacity of the writer's update queue; submitters block when it is
    /// full (closed-loop back-pressure). Default 8.
    pub writer_queue: usize,
    /// Recent global epochs kept pinned for "as of epoch N" time-travel
    /// queries. Takes effect only when every shard is persistent (the
    /// CPAM/SPaC families); retained views there share structure with the
    /// live tree, so the window costs `O(batch · log n)` nodes per epoch,
    /// not a copy. Default [`DEFAULT_EPOCH_HISTORY`]; 0 disables.
    pub epoch_history: usize,
    /// Additional **byte budget** for the epoch history: estimated retained
    /// bytes (batch payload plus a small per-entry overhead) beyond which
    /// the oldest epochs are evicted even when the count bound still has
    /// room. The newest epoch is always kept. 0 (the default) bounds by
    /// count only.
    pub epoch_history_bytes: usize,
    /// Persist applied batches and checkpoints under a data directory (see
    /// [`DurabilityConfig`] and the [`durability`] module). On construction
    /// the server recovers the newest consistent state from that directory
    /// — the caller's initial points are used only when nothing durable
    /// exists yet. `None` (the default) serves memory-only.
    pub durability: Option<DurabilityConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            coalesce_max_batch: 64,
            writer_queue: 8,
            epoch_history: DEFAULT_EPOCH_HISTORY,
            epoch_history_bytes: 0,
            durability: None,
        }
    }
}

enum Update<T: ServeCoord, const D: usize> {
    /// Deletions then insertions, as one published batch.
    Batch(Vec<Point<T, D>>, Vec<Point<T, D>>),
    /// Barrier: acknowledged once every prior batch has been published.
    Fence(mpsc::SyncSender<()>),
    /// Checkpoint fence: snapshot the state at the current epoch watermark,
    /// start a new WAL generation, and retire old ones. Answered with the
    /// watermark epoch, or the error that prevented it.
    Checkpoint(mpsc::SyncSender<std::io::Result<u64>>),
}

/// The writer thread's durable half: where files live, how they are
/// fsynced, and the open WAL segment of the current generation.
struct DurabilityState<T: WireCoord, const D: usize> {
    dir: std::path::PathBuf,
    fsync: FsyncPolicy,
    gen: u64,
    universe: Rect<T, D>,
    /// `None` after an append failure: the server keeps serving without
    /// durability (logged) until the next successful checkpoint re-arms it.
    wal: Option<WalWriter<T, D>>,
}

/// Every stored point across the current view, in shard order — the build
/// array a checkpoint serializes.
fn extract_all<T: ServeCoord, const D: usize>(router: &Router<T, D>) -> Vec<Point<T, D>> {
    let view = router.pin();
    let mut out = Vec::new();
    for i in 0..view.shard_count() {
        view.snapshot(i).index().extract_points(&mut out);
    }
    out
}

/// Take a checkpoint at the current epoch: durable WAL first (the watermark
/// must never run ahead of the records behind it), snapshot, fresh WAL
/// generation, retire generations older than the previous one. Also re-arms
/// a WAL disabled by an earlier append failure — the snapshot captures the
/// full state, so the fresh segment starts consistent.
fn checkpoint_now<T: ServeCoord + WireCoord, const D: usize>(
    router: &Router<T, D>,
    state: &mut DurabilityState<T, D>,
) -> std::io::Result<u64> {
    let t0 = std::time::Instant::now();
    if let Some(w) = state.wal.as_mut() {
        w.sync()?;
    }
    let epoch = router.epoch();
    let points = extract_all(router);
    let gen = state.gen + 1;
    durability::write_checkpoint(
        &checkpoint_path(&state.dir, gen),
        epoch,
        &state.universe,
        &points,
    )?;
    let wal = WalWriter::create(&wal_path(&state.dir, gen), epoch, state.fsync)?;
    state.gen = gen;
    state.wal = Some(wal);
    for w in durability::retire_generations(&state.dir, gen.saturating_sub(1)) {
        psi_obs::event!(Warn, "psi-server", [("gen", gen)], "{w}");
    }
    OBS_CKPT.record_duration(t0.elapsed());
    Ok(epoch)
}

/// The assembled serving subsystem (see the crate docs).
pub struct PsiServer<T: ServeCoord, const D: usize> {
    router: Arc<Router<T, D>>,
    coalescer: Arc<Coalescer<T, D>>,
    update_tx: Option<mpsc::SyncSender<Update<T, D>>>,
    writer: Option<JoinHandle<()>>,
    flusher: Option<JoinHandle<()>>,
    batches: Arc<AtomicU64>,
    durable: bool,
}

impl<T: ServeCoord + WireCoord, const D: usize> PsiServer<T, D> {
    /// Build the server: shard `points` over `universe`, spawn the writer
    /// and flusher threads. `factory` constructs each shard's index — once
    /// per shard for persistent families, twice (the left-right double
    /// buffer) for the rest.
    ///
    /// With [`ServeConfig::durability`] set, construction first **recovers**
    /// from the data directory: the newest valid checkpoint is rebuilt, the
    /// WAL tail behind it replayed, and the epoch counter continues where
    /// the previous run stopped — `points` and `universe` then apply only
    /// when the directory holds nothing durable. Damaged state degrades
    /// gracefully (warnings on stderr, earlier consistent epoch), and a
    /// durability setup failure falls back to memory-only serving rather
    /// than refusing to start.
    pub fn new(
        points: &[Point<T, D>],
        universe: &Rect<T, D>,
        cfg: ServeConfig,
        factory: IndexFactory<T, D>,
    ) -> Self {
        psi_parutils::stats::register_metrics();
        let shards = cfg.shards.max(1);
        // Recover durable state first: it may replace the initial points
        // and seed the epoch counter.
        let mut pending: Option<(DurabilityConfig, u64)> = None; // (config, next generation)
        let mut recovered: Option<durability::Recovered<T, D>> = None;
        if let Some(dcfg) = cfg.durability.clone() {
            match durability::recover::<T, D>(&dcfg.dir) {
                Ok(report) => {
                    for w in &report.warnings {
                        psi_obs::event!(Warn, "psi-server", "recovery: {w}");
                    }
                    pending = Some((dcfg, report.next_gen));
                    recovered = report.state;
                }
                Err(e) => psi_obs::event!(
                    Warn,
                    "psi-server",
                    [("dir", dcfg.dir.display())],
                    "data dir unusable ({e}); serving without durability"
                ),
            }
        }
        let (router, tail) = match &recovered {
            Some(rec) => (
                Router::with_history_at(
                    &factory,
                    &rec.points,
                    &rec.universe,
                    shards,
                    cfg.epoch_history,
                    cfg.epoch_history_bytes,
                    rec.base_epoch,
                ),
                rec.tail.as_slice(),
            ),
            None => (
                Router::with_history_at(
                    &factory,
                    points,
                    universe,
                    shards,
                    cfg.epoch_history,
                    cfg.epoch_history_bytes,
                    0,
                ),
                &[][..],
            ),
        };
        // Replay the WAL tail before anything is served: each publish bumps
        // the global epoch, landing exactly on the last durable epoch.
        for rec in tail {
            router.publish(&rec.delete, &rec.insert);
        }
        let router = Arc::new(router);

        // Start a fresh generation at the recovered (or initial) epoch: a
        // full checkpoint plus an empty WAL segment. Self-healing by
        // construction — whatever half-written files recovery skipped are
        // superseded and then retired.
        let dur: Option<DurabilityState<T, D>> = pending.and_then(|(dcfg, gen)| {
            let universe = recovered.as_ref().map_or(*universe, |rec| rec.universe);
            let mut state = DurabilityState {
                dir: dcfg.dir,
                fsync: dcfg.fsync,
                gen: gen - 1,
                universe,
                wal: None,
            };
            match checkpoint_now(&router, &mut state) {
                Ok(_) => Some(state),
                Err(e) => {
                    psi_obs::event!(
                        Warn,
                        "psi-server",
                        [("dir", state.dir.display())],
                        "cannot initialize durability ({e}); serving without it"
                    );
                    None
                }
            }
        });
        let durable = dur.is_some();

        let coalescer = Arc::new(Coalescer::new());
        let batches = Arc::new(AtomicU64::new(0));

        let (update_tx, update_rx) = mpsc::sync_channel(cfg.writer_queue.max(1));
        let writer = {
            let router = Arc::clone(&router);
            let batches = Arc::clone(&batches);
            let mut dur = dur;
            std::thread::Builder::new()
                .name("psi-serve-writer".into())
                .spawn(move || {
                    // Exits when every sender is dropped (shutdown).
                    while let Ok(update) = update_rx.recv() {
                        match update {
                            Update::Batch(delete, insert) => {
                                // WAL first (redo discipline): the record
                                // carries the epoch the publish will produce.
                                if let Some(state) = dur.as_mut() {
                                    if let Some(w) = state.wal.as_mut() {
                                        let epoch = router.epoch() + 1;
                                        if let Err(e) = w.append(epoch, &delete, &insert) {
                                            psi_obs::event!(
                                                Warn,
                                                "psi-server",
                                                [("epoch", epoch)],
                                                "WAL append failed ({e}); durability \
                                                 suspended until the next checkpoint"
                                            );
                                            state.wal = None;
                                        }
                                    }
                                }
                                router.publish(&delete, &insert);
                                batches.fetch_add(1, Ordering::Release);
                                OBS_QUEUE_DEPTH.dec();
                            }
                            Update::Fence(ack) => {
                                let _ = ack.send(());
                            }
                            Update::Checkpoint(ack) => {
                                let result = match dur.as_mut() {
                                    Some(state) => checkpoint_now(&router, state),
                                    None => Err(std::io::Error::new(
                                        std::io::ErrorKind::Unsupported,
                                        "server has no data directory configured",
                                    )),
                                };
                                let _ = ack.send(result);
                            }
                        }
                    }
                })
                .expect("spawn psi-serve-writer")
        };

        let flusher = {
            let router = Arc::clone(&router);
            let coalescer = Arc::clone(&coalescer);
            let max_batch = cfg.coalesce_max_batch.max(1);
            std::thread::Builder::new()
                .name("psi-serve-flush".into())
                .spawn(move || coalescer.run_flusher(&router, max_batch))
                .expect("spawn psi-serve-flush")
        };

        PsiServer {
            router,
            coalescer,
            update_tx: Some(update_tx),
            writer: Some(writer),
            flusher: Some(flusher),
            batches,
            durable,
        }
    }
}

impl<T: ServeCoord, const D: usize> PsiServer<T, D> {
    /// A cloneable client handle (queries go through the coalescer).
    pub fn client(&self) -> CoalesceHandle<T, D> {
        CoalesceHandle {
            shared: Arc::clone(&self.coalescer),
        }
    }

    /// A non-coalesced client handle: each call pins a fresh router view and
    /// answers inline on the calling thread, skipping the coalescer queue and
    /// the flusher round-trip entirely. Lowest latency when concurrency is
    /// low (nothing to amortise); under load the coalesced [`Self::client`]
    /// path wins because it batches the pool dispatch.
    pub fn direct_client(&self) -> DirectHandle<T, D> {
        DirectHandle {
            router: Arc::clone(&self.router),
        }
    }

    /// Pin a direct read view, bypassing the coalescer (tests, snapshots).
    pub fn view(&self) -> RouterView<T, D> {
        self.router.pin()
    }

    /// The view as of global `epoch`, if it is still inside the retained
    /// history window ([`ServeConfig::epoch_history`]); `None` for evicted
    /// epochs or non-persistent serving families.
    pub fn view_at(&self, epoch: u64) -> Option<RouterView<T, D>> {
        self.router.pin_at(epoch)
    }

    /// The current global epoch (batches published so far).
    pub fn epoch(&self) -> u64 {
        self.router.epoch()
    }

    /// The router (shard/epoch inspection).
    pub fn router(&self) -> &Router<T, D> {
        &self.router
    }

    /// Submit an update batch (deletions applied before insertions) to the
    /// writer. Blocks while the writer queue is full.
    pub fn submit(&self, delete: Vec<Point<T, D>>, insert: Vec<Point<T, D>>) {
        OBS_QUEUE_DEPTH.inc();
        self.update_tx
            .as_ref()
            .expect("server not shut down")
            .send(Update::Batch(delete, insert))
            .expect("psi-serve-writer alive");
    }

    /// Nonblocking [`Self::submit`]: returns the batch instead of queueing it
    /// when the writer queue is full, so a reactor thread can surface
    /// back-pressure to its client rather than stalling every connection.
    #[allow(clippy::type_complexity)]
    pub fn try_submit(
        &self,
        delete: Vec<Point<T, D>>,
        insert: Vec<Point<T, D>>,
    ) -> Result<(), (Vec<Point<T, D>>, Vec<Point<T, D>>)> {
        OBS_QUEUE_DEPTH.inc();
        match self
            .update_tx
            .as_ref()
            .expect("server not shut down")
            .try_send(Update::Batch(delete, insert))
        {
            Ok(()) => Ok(()),
            Err(mpsc::TrySendError::Full(Update::Batch(d, i)))
            | Err(mpsc::TrySendError::Disconnected(Update::Batch(d, i))) => {
                OBS_QUEUE_DEPTH.dec();
                Err((d, i))
            }
            Err(_) => unreachable!("try_submit only sends batches"),
        }
    }

    /// Take a durable checkpoint: every batch submitted before this call is
    /// published and snapshotted, a new WAL generation starts, and older
    /// generations (beyond the previous one) are retired. Returns the epoch
    /// watermark the snapshot captured. Fails with `Unsupported` when the
    /// server has no [`ServeConfig::durability`] configured.
    pub fn checkpoint(&self) -> std::io::Result<u64> {
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        self.update_tx
            .as_ref()
            .expect("server not shut down")
            .send(Update::Checkpoint(ack_tx))
            .expect("psi-serve-writer alive");
        ack_rx.recv().expect("psi-serve-writer answers checkpoints")
    }

    /// `true` while applied batches are being persisted to the data
    /// directory (false when none is configured, or after durability was
    /// suspended by a write failure and not yet re-armed by a checkpoint —
    /// this reports the configuration, not the live WAL state).
    pub fn is_durable(&self) -> bool {
        self.durable
    }

    /// Wait until every previously submitted batch has been published.
    pub fn quiesce(&self) {
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        self.update_tx
            .as_ref()
            .expect("server not shut down")
            .send(Update::Fence(ack_tx))
            .expect("psi-serve-writer alive");
        ack_rx.recv().expect("psi-serve-writer acknowledges fences");
    }

    /// Batches published so far.
    pub fn batches_applied(&self) -> u64 {
        self.batches.load(Ordering::Acquire)
    }

    /// Coalescer statistics: `(requests served, batched flushes)`.
    pub fn coalesce_stats(&self) -> (u64, u64) {
        (self.coalescer.served(), self.coalescer.flushes())
    }

    /// Stop both service threads and wait for them: the writer finishes the
    /// queued batches, the flusher answers the queued requests. Clients
    /// must be done first — a request enqueued after shutdown panics
    /// instead of hanging.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // Closing the channel lets the writer drain and exit.
        drop(self.update_tx.take());
        if let Some(w) = self.writer.take() {
            w.join().expect("psi-serve-writer exits cleanly");
        }
        self.coalescer.request_stop();
        if let Some(f) = self.flusher.take() {
            f.join().expect("psi-serve-flush exits cleanly");
        }
    }
}

impl<T: ServeCoord, const D: usize> Drop for PsiServer<T, D> {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The non-coalesced fast path (see [`PsiServer::direct_client`]): a
/// cloneable handle answering every query inline against a freshly pinned
/// router view. No queue, no flusher hand-off, no batching — one pool
/// dispatch per call. Valid after shutdown (it only reads snapshots), so
/// drain order relative to the service threads does not matter.
pub struct DirectHandle<T: ServeCoord, const D: usize> {
    router: Arc<Router<T, D>>,
}

impl<T: ServeCoord, const D: usize> Clone for DirectHandle<T, D> {
    fn clone(&self) -> Self {
        DirectHandle {
            router: Arc::clone(&self.router),
        }
    }
}

impl<T: ServeCoord, const D: usize> DirectHandle<T, D> {
    /// The `k` nearest stored neighbours of `q`, closest first.
    pub fn knn(&self, q: &Point<T, D>, k: usize) -> Vec<Point<T, D>> {
        self.router.pin().knn(q, k)
    }

    /// Number of stored points in the closed box.
    pub fn range_count(&self, rect: &Rect<T, D>) -> usize {
        self.router.pin().range_count(rect)
    }

    /// The stored points in the closed box (shard order).
    pub fn range_list(&self, rect: &Rect<T, D>) -> Vec<Point<T, D>> {
        self.router.pin().range_list(rect)
    }

    /// Time-travel kNN as of global `epoch`; `None` when the epoch is
    /// outside the retained history window.
    pub fn knn_at(&self, q: &Point<T, D>, k: usize, epoch: u64) -> Option<Vec<Point<T, D>>> {
        Some(self.router.pin_at(epoch)?.knn(q, k))
    }

    /// Time-travel range count as of global `epoch` (`None` if evicted).
    pub fn range_count_at(&self, rect: &Rect<T, D>, epoch: u64) -> Option<usize> {
        Some(self.router.pin_at(epoch)?.range_count(rect))
    }

    /// Time-travel range list as of global `epoch` (`None` if evicted).
    pub fn range_list_at(&self, rect: &Rect<T, D>, epoch: u64) -> Option<Vec<Point<T, D>>> {
        Some(self.router.pin_at(epoch)?.range_list(rect))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi::registry::{self, BuildOptions};
    use psi::PointI;
    use psi_workloads as workloads;

    fn factory(name: &'static str) -> IndexFactory<i64, 2> {
        Arc::new(move |pts: &[PointI<2>]| {
            registry::create::<2>(name, pts, &BuildOptions::default()).unwrap()
        })
    }

    #[test]
    fn end_to_end_serve_loop() {
        let max = 200_000;
        let data = workloads::uniform::<2>(3_000, max, 17);
        let universe = workloads::universe::<2>(max);
        let server = PsiServer::new(
            &data,
            &universe,
            ServeConfig {
                shards: 2,
                coalesce_max_batch: 16,
                writer_queue: 4,
                ..Default::default()
            },
            factory("p-orth"),
        );

        // Concurrent clients issue queries while a writer churns batches.
        let clients: Vec<_> = (0..3)
            .map(|c| {
                let handle = server.client();
                let queries = workloads::ind_queries(&data, 40, 100 + c);
                let rects = workloads::range_queries(&data, max, 50, 10, 200 + c);
                std::thread::spawn(move || {
                    let mut answered = 0usize;
                    for q in &queries {
                        let ans = handle.knn(q, 5);
                        assert_eq!(ans.len(), 5);
                        // Closest-first ordering survives the shard merge.
                        let d: Vec<i128> = ans.iter().map(|p| q.dist_sq(p)).collect();
                        assert!(d.windows(2).all(|w| w[0] <= w[1]));
                        answered += 1;
                    }
                    for r in &rects {
                        assert_eq!(handle.range_count(r), handle.range_list(r).len());
                        answered += 2;
                    }
                    answered
                })
            })
            .collect();

        // Writer: move points around (delete a slice, reinsert it) — the
        // live count is invariant, batch atomicity keeps it exact.
        for round in 0..10 {
            let lo = (round * 97) % 2_000;
            let slice = data[lo..lo + 200].to_vec();
            server.submit(slice.clone(), slice);
        }

        let total: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 3 * (40 + 20));
        server.quiesce();
        assert_eq!(server.batches_applied(), 10);
        assert_eq!(server.view().len(), data.len(), "moves conserve the count");
        let (served, flushes) = server.coalesce_stats();
        assert_eq!(served, 180);
        assert!(flushes <= served);
        server.shutdown();
    }

    #[test]
    fn quiesced_server_matches_oracle() {
        use psi::SpatialIndex as _;
        let max = 50_000;
        let data = workloads::varden::<2>(2_500, max, 5);
        let universe = workloads::universe::<2>(max);
        let server = PsiServer::new(
            &data,
            &universe,
            ServeConfig {
                shards: 3,
                ..Default::default()
            },
            factory("spac-h"),
        );
        let mut oracle = psi::BruteForce::<i64, 2>::build(&data, &universe);

        server.submit(data[..300].to_vec(), data[..50].to_vec());
        oracle.batch_delete(&data[..300]);
        oracle.batch_insert(&data[..50]);
        server.quiesce();

        let client = server.client();
        for q in workloads::ind_queries(&data, 30, 77) {
            let got: Vec<i128> = client.knn(&q, 6).iter().map(|p| q.dist_sq(p)).collect();
            let want: Vec<i128> = oracle.knn(&q, 6).iter().map(|p| q.dist_sq(p)).collect();
            assert_eq!(got, want);
        }
        for r in workloads::range_queries(&data, max, 60, 12, 78) {
            assert_eq!(client.range_count(&r), oracle.range_count(&r));
            let mut got = client.range_list(&r);
            let mut want = oracle.range_list(&r);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want);
        }
        server.shutdown();
    }

    #[test]
    fn time_travel_matches_epoch_replicas() {
        use psi::SpatialIndex as _;
        let max = 60_000;
        let data = workloads::uniform::<2>(2_000, max, 23);
        let universe = workloads::universe::<2>(max);
        let server = PsiServer::new(
            &data,
            &universe,
            ServeConfig {
                shards: 2,
                epoch_history: 4,
                ..Default::default()
            },
            factory("cpam-h"),
        );
        // Replay the same batches into per-epoch brute-force replicas.
        let mut replica = psi::BruteForce::<i64, 2>::build(&data, &universe);
        let mut replica_lens = vec![replica.len()];
        for round in 0..6usize {
            let del = data[round * 50..round * 50 + 50].to_vec();
            let ins = data[round * 20..round * 20 + 30].to_vec();
            replica.batch_delete(&del);
            replica.batch_insert(&ins);
            replica_lens.push(replica.len());
            server.submit(del, ins);
        }
        server.quiesce();
        assert_eq!(server.epoch(), 6);

        // Epochs 3..=6 are retained; old and future epochs are gone.
        let client = server.client();
        let whole = Rect::from_corners(Point::new([0, 0]), Point::new([max, max]));
        for e in 3..=6u64 {
            let view = server.view_at(e).expect("epoch inside the window");
            assert_eq!(view.len(), replica_lens[e as usize]);
            assert_eq!(
                client.range_count_at(&whole, e),
                Some(replica_lens[e as usize])
            );
            let q = Point::new([max / 2, max / 2]);
            let direct = server.direct_client().knn_at(&q, 5, e).unwrap();
            let coalesced = client.knn_at(&q, 5, e).unwrap();
            let dd: Vec<i128> = direct.iter().map(|p| q.dist_sq(p)).collect();
            let cd: Vec<i128> = coalesced.iter().map(|p| q.dist_sq(p)).collect();
            assert_eq!(dd, cd, "both client paths answer from the same epoch");
        }
        assert!(server.view_at(0).is_none(), "evicted epoch");
        assert!(server.view_at(99).is_none(), "future epoch");
        assert_eq!(client.range_count_at(&whole, 0), None);
        server.shutdown();
    }

    #[test]
    fn server_recovers_across_restarts() {
        use psi::SpatialIndex as _;
        let dir = std::env::temp_dir().join(format!("psi-serve-dur-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let max = 40_000;
        let data = workloads::uniform::<2>(1_500, max, 9);
        let universe = workloads::universe::<2>(max);
        let cfg = ServeConfig {
            shards: 2,
            durability: Some(DurabilityConfig::new(&dir)),
            ..Default::default()
        };
        let mut oracle = psi::BruteForce::<i64, 2>::build(&data, &universe);

        let server = PsiServer::new(&data, &universe, cfg.clone(), factory("spac-h"));
        assert!(server.is_durable());
        for round in 0..5usize {
            let del = data[round * 40..round * 40 + 40].to_vec();
            let ins = data[round * 15..round * 15 + 20].to_vec();
            oracle.batch_delete(&del);
            oracle.batch_insert(&ins);
            server.submit(del, ins);
        }
        server.quiesce();
        assert_eq!(server.epoch(), 5);
        let ck_epoch = server.checkpoint().unwrap();
        assert_eq!(ck_epoch, 5);
        // One more batch after the checkpoint, recovered from the WAL tail.
        let del = data[900..940].to_vec();
        oracle.batch_delete(&del);
        server.submit(del, Vec::new());
        drop(server);

        // Restart with *empty* initial points: everything must come back
        // from disk — checkpoint base plus the post-checkpoint WAL record.
        let server = PsiServer::new(&[], &universe, cfg, factory("spac-h"));
        assert_eq!(server.epoch(), 6, "epoch continues across the restart");
        assert_eq!(server.view().len(), oracle.len());
        let client = server.client();
        for q in workloads::ind_queries(&data, 20, 91) {
            let got: Vec<i128> = client.knn(&q, 5).iter().map(|p| q.dist_sq(p)).collect();
            let want: Vec<i128> = oracle.knn(&q, 5).iter().map(|p| q.dist_sq(p)).collect();
            assert_eq!(got, want, "recovered answers match the replayed oracle");
        }
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_without_data_dir_is_unsupported() {
        let data = workloads::uniform::<2>(300, 10_000, 3);
        let universe = workloads::universe::<2>(10_000);
        let server = PsiServer::new(&data, &universe, ServeConfig::default(), factory("spac-h"));
        assert!(!server.is_durable());
        let err = server.checkpoint().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
        server.shutdown();
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let data = workloads::uniform::<2>(500, 10_000, 1);
        let universe = workloads::universe::<2>(10_000);
        let server = PsiServer::new(&data, &universe, ServeConfig::default(), factory("zd"));
        server.submit(Vec::new(), data[..5].to_vec());
        drop(server); // must drain the batch and join both threads
    }
}
