//! Closed-loop load generation against a [`PsiServer`] — the shared driver
//! behind `bench_serve` and the scenario harness's `[serve]` phase.
//!
//! The loop spawns `clients` reader threads, each issuing
//! `ops_per_client` queries through a coalescing client handle (a
//! kNN / kNN / range-count / range-list round-robin) and recording per-query
//! latency into a shared `psi_obs` histogram (the percentiles reported are
//! bucket quantiles, within 1/32 of the sorted-sample value, from the same
//! histogram machinery the live metrics use), while an optional writer
//! thread publishes **move** batches —
//! delete a rotating slice of the dataset, reinsert the same points — at the
//! requested pacing. Moves keep the live count invariant, which turns the
//! run into a correctness check: after quiescing, the server must hold
//! exactly the dataset size, so a torn or lost batch fails the run instead
//! of skewing a number.

use crate::coalesce::CoalesceHandle;
use crate::router::ServeCoord;
use crate::{DirectHandle, PsiServer};
use psi_geometry::{Point, Rect};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// What a closed-loop client thread needs from its transport: issue one
/// query, block until answered. In-process handles implement it directly;
/// the `psi-net` crate implements it for wire-protocol socket clients, so
/// the same driver (and the same conservation/shape checks) measures both
/// the in-process and the over-the-socket paths.
pub trait QueryClient<T: ServeCoord, const D: usize>: Send + 'static {
    /// The `k` nearest stored neighbours of `q`, closest first.
    fn knn(&mut self, q: &Point<T, D>, k: usize) -> Vec<Point<T, D>>;
    /// Number of stored points in the closed box.
    fn range_count(&mut self, rect: &Rect<T, D>) -> usize;
    /// The stored points in the closed box (shard order).
    fn range_list(&mut self, rect: &Rect<T, D>) -> Vec<Point<T, D>>;
}

impl<T: ServeCoord, const D: usize> QueryClient<T, D> for CoalesceHandle<T, D> {
    fn knn(&mut self, q: &Point<T, D>, k: usize) -> Vec<Point<T, D>> {
        CoalesceHandle::knn(self, q, k)
    }
    fn range_count(&mut self, rect: &Rect<T, D>) -> usize {
        CoalesceHandle::range_count(self, rect)
    }
    fn range_list(&mut self, rect: &Rect<T, D>) -> Vec<Point<T, D>> {
        CoalesceHandle::range_list(self, rect)
    }
}

impl<T: ServeCoord, const D: usize> QueryClient<T, D> for DirectHandle<T, D> {
    fn knn(&mut self, q: &Point<T, D>, k: usize) -> Vec<Point<T, D>> {
        DirectHandle::knn(self, q, k)
    }
    fn range_count(&mut self, rect: &Rect<T, D>) -> usize {
        DirectHandle::range_count(self, rect)
    }
    fn range_list(&mut self, rect: &Rect<T, D>) -> Vec<Point<T, D>> {
        DirectHandle::range_list(self, rect)
    }
}

/// Shape of one closed-loop run.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Reader client threads.
    pub clients: usize,
    /// Queries each client issues.
    pub ops_per_client: usize,
    /// Neighbours per kNN query.
    pub k: usize,
    /// Points per published move batch; 0 disables the writer.
    pub write_batch: usize,
    /// Milliseconds between publishes (0 = back-to-back).
    pub write_every_ms: u64,
}

/// Measured outcome of a closed-loop run.
#[derive(Clone, Debug)]
pub struct LoadOutcome {
    /// Total queries answered across all clients.
    pub ops: usize,
    /// Update batches the writer published.
    pub batches: u64,
    /// Wall-clock seconds of the client phase.
    pub elapsed_secs: f64,
    /// Queries per second, all clients combined.
    pub throughput_qps: f64,
    /// Median per-query latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-query latency, milliseconds.
    pub p99_ms: f64,
    /// Mean requests folded into one coalesced flush.
    pub coalesce_factor: f64,
}

/// Run the closed loop (see module docs) with in-process coalescing client
/// handles. `data` is both the writer's move-batch source and the
/// count-conservation expectation; it must be the point set the server was
/// built over.
pub fn closed_loop<T: ServeCoord, const D: usize>(
    server: &Arc<PsiServer<T, D>>,
    data: &[Point<T, D>],
    queries: &[Point<T, D>],
    rects: &[Rect<T, D>],
    spec: &LoadSpec,
) -> Result<LoadOutcome, String> {
    closed_loop_with(server, data, queries, rects, spec, |_| {
        Ok(Box::new(server.client()))
    })
}

/// [`closed_loop`] over caller-supplied client transports: `make_client` is
/// invoked once per client index (on the calling thread — connection errors
/// surface before any thread spawns) and each resulting [`QueryClient`]
/// moves into its own closed-loop thread. The writer still publishes
/// in-process through `server`, and the conservation check still reads the
/// server's own view, so a socket transport is measured against exactly the
/// state the wire answers came from.
#[allow(clippy::type_complexity)]
pub fn closed_loop_with<T: ServeCoord, const D: usize>(
    server: &Arc<PsiServer<T, D>>,
    data: &[Point<T, D>],
    queries: &[Point<T, D>],
    rects: &[Rect<T, D>],
    spec: &LoadSpec,
    make_client: impl Fn(usize) -> Result<Box<dyn QueryClient<T, D>>, String>,
) -> Result<LoadOutcome, String> {
    if queries.is_empty() || rects.is_empty() {
        return Err("closed_loop needs non-empty query and rect pools".to_string());
    }
    let mut handles: Vec<Box<dyn QueryClient<T, D>>> = Vec::with_capacity(spec.clients);
    for c in 0..spec.clients {
        handles.push(make_client(c).map_err(|e| format!("client {c}: {e}"))?);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writer = (spec.write_batch > 0 && !data.is_empty()).then(|| {
        let server = Arc::clone(server);
        let stop = Arc::clone(&stop);
        let batch = spec.write_batch.min(data.len());
        let pace = std::time::Duration::from_millis(spec.write_every_ms);
        let data = data.to_vec();
        std::thread::spawn(move || {
            let mut offset = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let lo = offset % (data.len() - batch + 1);
                let slice = data[lo..lo + batch].to_vec();
                server.submit(slice.clone(), slice);
                offset = offset.wrapping_add(batch * 7 + 13);
                if !pace.is_zero() {
                    std::thread::sleep(pace);
                }
            }
        })
    });

    let k = spec.k;
    let expect_k = k.min(data.len());
    // One histogram per run, shared by every client thread: record() is
    // wait-free, so threads never serialize on it, and the percentiles come
    // out of the same bucketing the live psi-obs metrics use.
    let hist = Arc::new(psi_obs::Histogram::new());
    let started = Instant::now();
    let client_threads: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(c, mut handle)| {
            let queries = queries.to_vec();
            let rects = rects.to_vec();
            let ops = spec.ops_per_client;
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                for i in 0..ops {
                    let pick = c + i * 31;
                    let t = Instant::now();
                    match i % 4 {
                        0 | 1 => {
                            let q = &queries[pick % queries.len()];
                            let ans = handle.knn(q, k);
                            assert_eq!(ans.len(), expect_k, "short kNN answer");
                            debug_assert!(ans
                                .windows(2)
                                .all(|w| T::dist_cmp(q.dist_sq(&w[0]), q.dist_sq(&w[1]))
                                    != std::cmp::Ordering::Greater));
                        }
                        2 => {
                            handle.range_count(&rects[pick % rects.len()]);
                        }
                        _ => {
                            handle.range_list(&rects[pick % rects.len()]);
                        }
                    }
                    hist.record_duration(t.elapsed());
                }
            })
        })
        .collect();
    for t in client_threads {
        t.join().map_err(|_| "a load-generator client panicked")?;
    }
    let elapsed = started.elapsed().as_secs_f64();

    stop.store(true, Ordering::Relaxed);
    if let Some(w) = writer {
        w.join().map_err(|_| "the load-generator writer panicked")?;
    }
    server.quiesce();
    let live = server.view().len();
    if live != data.len() {
        return Err(format!(
            "move batches lost points: {live} live after quiesce, expected {} \
             (a batch tore)",
            data.len()
        ));
    }
    let batches = server.batches_applied();
    let (served, flushes) = server.coalesce_stats();

    let snap = hist.snapshot();
    Ok(LoadOutcome {
        ops: snap.count() as usize,
        batches,
        elapsed_secs: elapsed,
        throughput_qps: snap.count() as f64 / elapsed.max(1e-9),
        p50_ms: snap.quantile_ms(0.5),
        p99_ms: snap.quantile_ms(0.99),
        coalesce_factor: if flushes > 0 {
            served as f64 / flushes as f64
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndexFactory, ServeConfig};
    use psi::registry::{self, BuildOptions};
    use psi::PointI;
    use psi_workloads as workloads;

    #[test]
    fn closed_loop_measures_and_conserves() {
        let max = 50_000;
        let data = workloads::uniform::<2>(1_000, max, 3);
        let universe = workloads::universe::<2>(max);
        let factory: IndexFactory<i64, 2> = Arc::new(|pts: &[PointI<2>]| {
            registry::create::<2>("pkd", pts, &BuildOptions::default()).unwrap()
        });
        let server = Arc::new(PsiServer::new(
            &data,
            &universe,
            ServeConfig {
                shards: 2,
                ..Default::default()
            },
            factory,
        ));
        let queries = workloads::ind_queries(&data, 32, 4);
        let rects = workloads::range_queries(&data, max, 30, 8, 5);
        let spec = LoadSpec {
            clients: 2,
            ops_per_client: 40,
            k: 5,
            write_batch: 64,
            write_every_ms: 0,
        };
        let out = closed_loop(&server, &data, &queries, &rects, &spec).unwrap();
        assert_eq!(out.ops, 80);
        assert!(out.throughput_qps > 0.0);
        assert!(out.p99_ms >= out.p50_ms);
        assert!(out.coalesce_factor >= 1.0);
        assert!(out.batches > 0);

        // k larger than the dataset clamps instead of panicking; ops = 0 is
        // measured as an empty run, not an index-out-of-bounds.
        let tiny = LoadSpec {
            clients: 1,
            ops_per_client: 0,
            k: 5_000,
            write_batch: 0,
            write_every_ms: 0,
        };
        let out = closed_loop(&server, &data, &queries, &rects, &tiny).unwrap();
        assert_eq!(out.ops, 0);
        assert_eq!(out.p50_ms, 0.0);
    }
}
