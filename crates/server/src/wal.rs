//! Batch write-ahead log: the redo log behind [`crate::PsiServer`]'s
//! durability (`data_dir` in [`crate::DurabilityConfig`]).
//!
//! Every batch the writer thread publishes is first appended here as one
//! **record**:
//!
//! ```text
//! ┌──────────┬────────────┬────────────┬───────────────────────────────┐
//! │ len: u32 │ epoch: u64 │ crc32: u32 │ body                          │
//! │ LE, counts epoch..body │ LE, over   │ [n_del: u32][n_ins: u32]      │
//! │          │            │ epoch+body │ [n_del points][n_ins points]  │
//! └──────────┴────────────┴────────────┴───────────────────────────────┘
//! ```
//!
//! Points are serialized with the workspace's shared 8-byte little-endian
//! coordinate codec ([`WireCoord`] — the same words the ψ-net wire protocol
//! carries, so `f64` NaN payloads and `-0.0` survive bit-for-bit). `epoch`
//! is the **global** router epoch the batch produced. The log stores whole
//! batches, not per-shard splits: stripe routing is a pure function of the
//! universe cuts recorded in the paired checkpoint, so replaying the global
//! sequence reproduces every per-shard epoch (including the skipped bumps
//! for shards whose sub-batch was empty) exactly.
//!
//! A segment file starts with a 16-byte header — magic, format version,
//! coordinate tag, dimensionality, and the **base epoch** (the checkpoint
//! watermark the segment continues from) — followed by records with strictly
//! consecutive epochs `base+1, base+2, …`.
//!
//! Reading is tolerant by design: a torn tail (partial final record — the
//! expected crash shape), a CRC mismatch, an out-of-bounds length prefix or
//! a non-consecutive epoch ends the scan at the last good record. The valid
//! prefix is returned together with a description of what was dropped;
//! nothing in this module panics on hostile bytes.

use psi_geometry::{Point, WireCoord};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, Write};
use std::path::{Path, PathBuf};

/// Wall time of one [`WalWriter::append`] (encode + buffered write + any
/// fsync the policy demands).
static OBS_APPEND: psi_obs::LazyHistogram = psi_obs::LazyHistogram::new(
    "psi_wal_append_latency_ns",
    "wall time of one WAL batch append, fsync included when the policy demands it",
);
/// Wall time of each explicit flush-to-stable-storage (`sync_all`).
static OBS_FSYNC: psi_obs::LazyHistogram = psi_obs::LazyHistogram::new(
    "psi_wal_fsync_latency_ns",
    "wall time of one WAL flush+fsync to stable storage",
);
/// Record bytes handed to the WAL segment (headers excluded).
static OBS_BYTES: psi_obs::LazyCounter = psi_obs::LazyCounter::new(
    "psi_wal_bytes_written_total",
    "record bytes appended to WAL segments",
);

/// First bytes of every WAL segment: `b"PSIW"` as a little-endian u32.
pub const WAL_MAGIC: u32 = u32::from_le_bytes(*b"PSIW");
/// WAL format version.
pub const WAL_VERSION: u16 = 1;
/// Bytes of the segment header (magic + version + tag + dims + base epoch).
pub const WAL_HEADER: usize = 16;
/// Bytes of the record length prefix.
pub const REC_PREFIX: usize = 4;
/// Fixed record bytes after the length prefix (epoch + crc + two counts).
pub const REC_FIXED: usize = 8 + 4 + 4 + 4;
/// Hard cap on one record's declared length (256 MiB). The prefix is
/// untrusted input on recovery — a corrupt 4 GiB "record" must cost nothing.
pub const MAX_RECORD: usize = 1 << 28;

// ------------------------------------------------------------------- crc32

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — hand-rolled
/// table-driven implementation; the workspace builds without external crates.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// The CRC-32 of `bytes` (IEEE polynomial, as used by gzip/zip/PNG).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ------------------------------------------------------------ fsync policy

/// When the WAL writer flushes appended records to stable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended batch: an acknowledged-and-published
    /// batch is never lost to a crash. The durable default.
    #[default]
    EveryBatch,
    /// `fsync` after every `n` batches: bounded loss window, amortised cost.
    EveryN(u32),
    /// Never `fsync` explicitly — leave flushing to the OS page cache. A
    /// crash of the *process* loses nothing (the kernel holds the writes);
    /// a crash of the *machine* may lose the un-flushed tail.
    Os,
}

impl FsyncPolicy {
    /// Parse the config spelling: `every-batch`, `os`, or `every-N` for a
    /// positive batch count `N` (e.g. `every-8`).
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "every-batch" => Some(FsyncPolicy::EveryBatch),
            "os" => Some(FsyncPolicy::Os),
            _ => {
                let n: u32 = s.strip_prefix("every-")?.parse().ok()?;
                (n > 0).then_some(FsyncPolicy::EveryN(n))
            }
        }
    }

    /// The canonical config spelling ([`FsyncPolicy::parse`] inverse).
    pub fn name(&self) -> String {
        match self {
            FsyncPolicy::EveryBatch => "every-batch".to_string(),
            FsyncPolicy::EveryN(n) => format!("every-{n}"),
            FsyncPolicy::Os => "os".to_string(),
        }
    }
}

// ------------------------------------------------------------ record codec

/// One decoded WAL record: the batch that produced global `epoch`.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord<T: WireCoord, const D: usize> {
    /// The global router epoch this batch published.
    pub epoch: u64,
    /// Deletions, applied before insertions (the `BatchDiff` contract).
    pub delete: Vec<Point<T, D>>,
    /// Insertions.
    pub insert: Vec<Point<T, D>>,
}

/// Why a record or segment failed to decode. Every variant is a normal
/// error value — hostile input never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// Declared record length out of bounds (undershoots the fixed fields
    /// or exceeds [`MAX_RECORD`]).
    BadLength(usize),
    /// Not enough bytes for the declared length (torn tail).
    Truncated,
    /// Stored CRC disagrees with the recomputed one.
    BadCrc { stored: u32, computed: u32 },
    /// Body shape disagrees with its point counts.
    Malformed(&'static str),
    /// Segment header rejected (magic, version, or shape mismatch).
    BadHeader(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::BadLength(n) => write!(f, "record length {n} out of bounds"),
            WalError::Truncated => write!(f, "torn record (payload shorter than declared)"),
            WalError::BadCrc { stored, computed } => {
                write!(
                    f,
                    "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            WalError::Malformed(what) => write!(f, "malformed record: {what}"),
            WalError::BadHeader(what) => write!(f, "bad segment header: {what}"),
        }
    }
}

impl std::error::Error for WalError {}

fn put_points<T: WireCoord, const D: usize>(out: &mut Vec<u8>, pts: &[Point<T, D>]) {
    out.reserve(pts.len() * D * 8);
    for p in pts {
        for c in p.coords {
            out.extend_from_slice(&c.to_wire());
        }
    }
}

/// Append one encoded record to `out`. The buffer is reusable across calls;
/// each call appends exactly one `[len][epoch][crc][body]` record.
pub fn encode_record<T: WireCoord, const D: usize>(
    epoch: u64,
    delete: &[Point<T, D>],
    insert: &[Point<T, D>],
    out: &mut Vec<u8>,
) {
    let body_len = 8 + (delete.len() + insert.len()) * D * 8;
    let at = out.len();
    out.extend_from_slice(&[0u8; REC_PREFIX]); // backpatched below
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc, backpatched below
    out.extend_from_slice(&(delete.len() as u32).to_le_bytes());
    out.extend_from_slice(&(insert.len() as u32).to_le_bytes());
    put_points(out, delete);
    put_points(out, insert);
    debug_assert_eq!(out.len() - at - REC_PREFIX - 12, body_len);
    let len = (out.len() - at - REC_PREFIX) as u32;
    out[at..at + REC_PREFIX].copy_from_slice(&len.to_le_bytes());
    // CRC covers the epoch and the body — everything the record claims —
    // but not itself or the length prefix (the length is validated
    // structurally: a wrong length fails the CRC anyway).
    let crc = {
        let epoch_bytes = &out[at + REC_PREFIX..at + REC_PREFIX + 8];
        let body = &out[at + REC_PREFIX + 12..];
        let mut buf = Vec::with_capacity(8 + body.len());
        buf.extend_from_slice(epoch_bytes);
        buf.extend_from_slice(body);
        crc32(&buf)
    };
    out[at + REC_PREFIX + 8..at + REC_PREFIX + 12].copy_from_slice(&crc.to_le_bytes());
}

/// Decode one record from the start of `buf`. Returns the record and the
/// total bytes it occupied (prefix included), so a reader can advance.
/// Never allocates more than `buf` can back — the length prefix and the
/// point counts are both validated against the bytes that actually arrived.
pub fn decode_record<T: WireCoord, const D: usize>(
    buf: &[u8],
) -> Result<(WalRecord<T, D>, usize), WalError> {
    if buf.len() < REC_PREFIX {
        return Err(WalError::Truncated);
    }
    let len = u32::from_le_bytes(buf[..REC_PREFIX].try_into().expect("4 bytes")) as usize;
    if !((REC_FIXED - REC_PREFIX)..=MAX_RECORD).contains(&len) {
        return Err(WalError::BadLength(len));
    }
    let total = REC_PREFIX + len;
    if buf.len() < total {
        return Err(WalError::Truncated);
    }
    let rec = &buf[REC_PREFIX..total];
    let epoch = u64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
    let stored = u32::from_le_bytes(rec[8..12].try_into().expect("4 bytes"));
    let body = &rec[12..];
    let computed = {
        let mut buf = Vec::with_capacity(8 + body.len());
        buf.extend_from_slice(&rec[..8]);
        buf.extend_from_slice(body);
        crc32(&buf)
    };
    if stored != computed {
        return Err(WalError::BadCrc { stored, computed });
    }
    let n_del = u32::from_le_bytes(body[..4].try_into().expect("4 bytes")) as usize;
    let n_ins = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes")) as usize;
    let pts = &body[8..];
    let need = n_del
        .checked_add(n_ins)
        .and_then(|n| n.checked_mul(D * 8))
        .ok_or(WalError::Malformed("point counts overflow"))?;
    if need != pts.len() {
        return Err(WalError::Malformed(
            "point counts disagree with body length",
        ));
    }
    let read_points = |range: std::ops::Range<usize>| -> Vec<Point<T, D>> {
        pts[range.start * D * 8..range.end * D * 8]
            .chunks_exact(D * 8)
            .map(|chunk| {
                let mut coords = [T::ZERO; D];
                for (i, c) in coords.iter_mut().enumerate() {
                    *c = T::from_wire(chunk[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
                }
                Point::new(coords)
            })
            .collect()
    };
    Ok((
        WalRecord {
            epoch,
            delete: read_points(0..n_del),
            insert: read_points(n_del..n_del + n_ins),
        },
        total,
    ))
}

// ---------------------------------------------------------------- segments

fn encode_header<T: WireCoord, const D: usize>(base_epoch: u64) -> [u8; WAL_HEADER] {
    let mut h = [0u8; WAL_HEADER];
    h[..4].copy_from_slice(&WAL_MAGIC.to_le_bytes());
    h[4..6].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[6] = T::TAG;
    h[7] = D as u8;
    h[8..16].copy_from_slice(&base_epoch.to_le_bytes());
    h
}

/// Validate a segment header against this server's shape; returns the base
/// epoch the segment continues from.
pub fn decode_header<T: WireCoord, const D: usize>(buf: &[u8]) -> Result<u64, WalError> {
    if buf.len() < WAL_HEADER {
        return Err(WalError::BadHeader("shorter than the header".to_string()));
    }
    let magic = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
    if magic != WAL_MAGIC {
        return Err(WalError::BadHeader(format!("magic {magic:#010x}")));
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().expect("2 bytes"));
    if version != WAL_VERSION {
        return Err(WalError::BadHeader(format!("version {version}")));
    }
    if buf[6] != T::TAG || buf[7] != D as u8 {
        return Err(WalError::BadHeader(format!(
            "shape: segment is tag {} dims {}, server serves tag {} dims {D}",
            buf[6],
            buf[7],
            T::TAG
        )));
    }
    Ok(u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")))
}

/// The readable contents of one WAL segment: the valid record prefix, plus
/// what (if anything) had to be dropped behind it.
pub struct WalSegment<T: WireCoord, const D: usize> {
    /// The checkpoint watermark the segment continues from.
    pub base_epoch: u64,
    /// Records with consecutive epochs `base_epoch + 1, base_epoch + 2, …`.
    pub records: Vec<WalRecord<T, D>>,
    /// `Some(description)` when a torn tail, CRC mismatch or epoch gap ended
    /// the scan early; the bytes after the last good record were dropped.
    pub dropped: Option<String>,
    /// File offset just past the last good record — where a writer resuming
    /// this segment must truncate to before appending.
    pub valid_len: u64,
}

/// Read a whole segment file, tolerating a damaged tail (see the module
/// docs). `Err` means the file is unusable outright (unreadable, or its
/// header is missing/alien); a damaged tail is *not* an error — the valid
/// prefix comes back in [`WalSegment::records`] with
/// [`WalSegment::dropped`] describing the loss.
pub fn read_segment<T: WireCoord, const D: usize>(path: &Path) -> Result<WalSegment<T, D>, String> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let base_epoch =
        decode_header::<T, D>(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut records = Vec::new();
    let mut pos = WAL_HEADER;
    let mut dropped = None;
    let mut expect = base_epoch + 1;
    while pos < bytes.len() {
        match decode_record::<T, D>(&bytes[pos..]) {
            Ok((rec, consumed)) => {
                if rec.epoch != expect {
                    dropped = Some(format!(
                        "epoch gap at offset {pos}: expected {expect}, found {} \
                         ({} trailing bytes dropped)",
                        rec.epoch,
                        bytes.len() - pos
                    ));
                    break;
                }
                expect += 1;
                pos += consumed;
                records.push(rec);
            }
            Err(e) => {
                dropped = Some(format!(
                    "{e} at offset {pos} ({} trailing bytes dropped)",
                    bytes.len() - pos
                ));
                break;
            }
        }
    }
    Ok(WalSegment {
        base_epoch,
        records,
        dropped,
        valid_len: pos as u64,
    })
}

// ------------------------------------------------------------------ writer

/// Appends batch records to one segment file under an fsync policy.
pub struct WalWriter<T: WireCoord, const D: usize> {
    out: BufWriter<File>,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Batches appended since the last fsync (for [`FsyncPolicy::EveryN`]).
    unsynced: u32,
    buf: Vec<u8>,
    _marker: std::marker::PhantomData<Point<T, D>>,
}

impl<T: WireCoord, const D: usize> WalWriter<T, D> {
    /// Create a fresh segment at `path` (truncating any stale file) with
    /// `base_epoch` as its checkpoint watermark, header written and synced.
    pub fn create(path: &Path, base_epoch: u64, policy: FsyncPolicy) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut out = BufWriter::new(file);
        out.write_all(&encode_header::<T, D>(base_epoch))?;
        out.flush()?;
        // The header must be durable before the first record can claim to
        // be: a crash between the two must leave a readable empty segment.
        out.get_ref().sync_all()?;
        Ok(WalWriter {
            out,
            path: path.to_path_buf(),
            policy,
            unsynced: 0,
            buf: Vec::new(),
            _marker: std::marker::PhantomData,
        })
    }

    /// Reopen an existing segment for appending, first truncating it to
    /// `valid_len` (the readable prefix [`read_segment`] reported) so a torn
    /// tail from a previous crash can never corrupt the records behind it.
    pub fn resume(path: &Path, valid_len: u64, policy: FsyncPolicy) -> std::io::Result<Self> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        file.sync_all()?;
        file.seek(std::io::SeekFrom::Start(valid_len))?;
        Ok(WalWriter {
            out: BufWriter::new(file),
            path: path.to_path_buf(),
            policy,
            unsynced: 0,
            buf: Vec::new(),
            _marker: std::marker::PhantomData,
        })
    }

    /// The segment file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one batch record and apply the fsync policy. When this
    /// returns under [`FsyncPolicy::EveryBatch`], the record is on stable
    /// storage.
    pub fn append(
        &mut self,
        epoch: u64,
        delete: &[Point<T, D>],
        insert: &[Point<T, D>],
    ) -> std::io::Result<()> {
        let t0 = std::time::Instant::now();
        self.buf.clear();
        encode_record(epoch, delete, insert, &mut self.buf);
        self.out.write_all(&self.buf)?;
        OBS_BYTES.add(self.buf.len() as u64);
        match self.policy {
            FsyncPolicy::EveryBatch => self.flush_and_sync()?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n {
                    self.flush_and_sync()?;
                    self.unsynced = 0;
                }
            }
            FsyncPolicy::Os => self.out.flush()?,
        }
        OBS_APPEND.record_duration(t0.elapsed());
        Ok(())
    }

    /// Flush and fsync whatever is buffered (checkpoint fences call this
    /// before recording their watermark).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.flush_and_sync()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Flush the buffer and push it to stable storage, timing the whole
    /// flush+fsync into the fsync histogram.
    fn flush_and_sync(&mut self) -> std::io::Result<()> {
        let t0 = std::time::Instant::now();
        self.out.flush()?;
        self.out.get_ref().sync_all()?;
        OBS_FSYNC.record_duration(t0.elapsed());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_geometry::PointI;

    fn rec(epoch: u64, del: &[i64], ins: &[i64]) -> WalRecord<i64, 2> {
        WalRecord {
            epoch,
            delete: del.iter().map(|&v| Point::new([v, v * 2])).collect(),
            insert: ins.iter().map(|&v| Point::new([v, -v])).collect(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn record_round_trips() {
        let r = rec(7, &[1, 2, 3], &[9]);
        let mut buf = Vec::new();
        encode_record(r.epoch, &r.delete, &r.insert, &mut buf);
        let (got, consumed) = decode_record::<i64, 2>(&buf).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(got, r);
        // Two records back to back decode sequentially.
        let r2 = rec(8, &[], &[4, 5]);
        encode_record(r2.epoch, &r2.delete, &r2.insert, &mut buf);
        let (first, n1) = decode_record::<i64, 2>(&buf).unwrap();
        let (second, n2) = decode_record::<i64, 2>(&buf[n1..]).unwrap();
        assert_eq!(first, r);
        assert_eq!(second, r2);
        assert_eq!(n1 + n2, buf.len());
    }

    #[test]
    fn corruption_is_detected_never_panics() {
        let r = rec(3, &[10, 20], &[30]);
        let mut clean = Vec::new();
        encode_record(r.epoch, &r.delete, &r.insert, &mut clean);

        // Truncation at every cut point: torn, bad length, or bad crc —
        // never Ok with wrong contents, never a panic.
        for cut in 0..clean.len() {
            match decode_record::<i64, 2>(&clean[..cut]) {
                Ok(_) => panic!("truncated record decoded at cut {cut}"),
                Err(WalError::Truncated | WalError::BadLength(_) | WalError::BadCrc { .. }) => {}
                Err(e) => panic!("unexpected error at cut {cut}: {e}"),
            }
        }
        // Single-byte flips anywhere: either the length bound trips or the
        // CRC catches it (a flipped count byte changes the CRC too).
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_record::<i64, 2>(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        // A hostile length prefix must be rejected before allocation.
        let mut huge = clean.clone();
        huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_record::<i64, 2>(&huge),
            Err(WalError::BadLength(u32::MAX as usize))
        );
    }

    #[test]
    fn fsync_policy_parses_and_round_trips() {
        assert_eq!(
            FsyncPolicy::parse("every-batch"),
            Some(FsyncPolicy::EveryBatch)
        );
        assert_eq!(FsyncPolicy::parse("os"), Some(FsyncPolicy::Os));
        assert_eq!(FsyncPolicy::parse("every-8"), Some(FsyncPolicy::EveryN(8)));
        assert_eq!(FsyncPolicy::parse("every-0"), None);
        assert_eq!(FsyncPolicy::parse("every-"), None);
        assert_eq!(FsyncPolicy::parse("always"), None);
        for p in [
            FsyncPolicy::EveryBatch,
            FsyncPolicy::EveryN(3),
            FsyncPolicy::Os,
        ] {
            assert_eq!(FsyncPolicy::parse(&p.name()), Some(p));
        }
    }

    #[test]
    fn segment_write_read_resume() {
        let dir = std::env::temp_dir().join(format!("psi-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-seg.log");

        let mut w = WalWriter::<i64, 2>::create(&path, 5, FsyncPolicy::EveryN(2)).unwrap();
        for e in 6..=9u64 {
            let r = rec(e, &[e as i64], &[e as i64 + 100]);
            w.append(e, &r.delete, &r.insert).unwrap();
        }
        w.sync().unwrap();
        drop(w);

        let seg = read_segment::<i64, 2>(&path).unwrap();
        assert_eq!(seg.base_epoch, 5);
        assert_eq!(seg.records.len(), 4);
        assert!(seg.dropped.is_none());
        assert_eq!(seg.records.last().unwrap().epoch, 9);

        // Tear the tail mid-record: the valid prefix survives, the tear is
        // reported, and resuming truncates it away.
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 7).unwrap();
        drop(f);
        let seg = read_segment::<i64, 2>(&path).unwrap();
        assert_eq!(seg.records.len(), 3, "torn final record dropped");
        assert!(seg.dropped.is_some());

        let mut w =
            WalWriter::<i64, 2>::resume(&path, seg.valid_len, FsyncPolicy::EveryBatch).unwrap();
        let r = rec(9, &[], &[1]);
        w.append(9, &r.delete, &r.insert).unwrap();
        drop(w);
        let seg = read_segment::<i64, 2>(&path).unwrap();
        assert_eq!(seg.records.len(), 4);
        assert!(seg.dropped.is_none());
        assert_eq!(seg.records.last().unwrap(), &r);

        // An epoch gap ends the scan at the gap.
        let mut w = WalWriter::<i64, 2>::resume(&path, seg.valid_len, FsyncPolicy::Os).unwrap();
        w.append(42, &[], &[PointI::<2>::new([1, 1])]).unwrap();
        w.sync().unwrap();
        drop(w);
        let seg = read_segment::<i64, 2>(&path).unwrap();
        assert_eq!(seg.records.len(), 4);
        assert!(seg.dropped.unwrap().contains("epoch gap"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn alien_headers_are_rejected() {
        assert!(decode_header::<i64, 2>(&[0u8; 3]).is_err());
        let mut h = encode_header::<i64, 2>(0).to_vec();
        h[0] ^= 1; // wrong magic
        assert!(matches!(
            decode_header::<i64, 2>(&h),
            Err(WalError::BadHeader(_))
        ));
        let h = encode_header::<f64, 2>(0);
        assert!(
            decode_header::<i64, 2>(&h).is_err(),
            "tag mismatch must be rejected"
        );
        let h = encode_header::<i64, 3>(0);
        assert!(
            decode_header::<i64, 2>(&h).is_err(),
            "dims mismatch must be rejected"
        );
    }
}
