//! Checkpoint snapshots and crash recovery for [`crate::PsiServer`].
//!
//! Durability pairs two on-disk artifacts per **generation** `g`:
//!
//! * `checkpoint-g<g>.psic` — a full binary snapshot of the stored points
//!   at one epoch watermark (the build array any registry family rebuilds
//!   from), and
//! * `wal-g<g>.log` — the [`crate::wal`] segment continuing from that
//!   watermark.
//!
//! A [checkpoint](write_checkpoint) is written to a temp file, fsynced, and
//! renamed into place, so a crash mid-checkpoint leaves the previous
//! generation untouched. Every checkpoint starts a new generation; the two
//! newest generations are retained, so a truncated or corrupted newest
//! checkpoint falls back to the previous one (its WAL segment chain still
//! reaches the present).
//!
//! [`recover`] walks generations newest-first: the first checkpoint that
//! validates becomes the base state, then WAL segments from that generation
//! forward are chained by contiguous epochs. Anything unreadable — torn
//! record tails, CRC mismatches, epoch gaps, alien headers — ends the chain
//! at the last consistent epoch and is reported as a warning, never a panic:
//! the recovered state is always *some* prefix of what was acknowledged.
//!
//! ## Checkpoint format
//!
//! ```text
//! [u32 magic "PSIC"][u16 version][u8 tag][u8 dims]
//! [u64 epoch][u64 count]
//! [2 * D words: universe lo, hi]
//! [count * D words: points]
//! [u32 crc32 over everything before it]
//! ```
//!
//! Words are the shared 8-byte little-endian [`WireCoord`] encoding (bit
//! exact for `f64` NaN payloads and `-0.0`).

use crate::wal::{self, crc32, FsyncPolicy, WalRecord, WalSegment};
use psi_geometry::{Point, Rect, WireCoord};
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Recovery scans performed (one per durable server construction).
static OBS_RECOVERIES: psi_obs::LazyCounter =
    psi_obs::LazyCounter::new("psi_recovery_runs_total", "crash-recovery scans performed");
/// Degradations recovery tolerated (torn tails, rejected checkpoints, …).
static OBS_RECOVERY_WARNINGS: psi_obs::LazyCounter = psi_obs::LazyCounter::new(
    "psi_recovery_warnings_total",
    "defects recovery degraded around (torn tails, rejected checkpoints, gaps)",
);

/// First bytes of every checkpoint file: `b"PSIC"` as a little-endian u32.
pub const CHECKPOINT_MAGIC: u32 = u32::from_le_bytes(*b"PSIC");
/// Checkpoint format version.
pub const CHECKPOINT_VERSION: u16 = 1;
/// Fixed checkpoint bytes before the universe words.
const CK_HEADER: usize = 4 + 2 + 1 + 1 + 8 + 8;

/// Where and how a [`crate::PsiServer`] persists its state.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding the checkpoint and WAL files (created on demand).
    pub dir: PathBuf,
    /// When WAL appends reach stable storage (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
}

impl DurabilityConfig {
    /// Durability under `dir` with the default [`FsyncPolicy::EveryBatch`].
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::default(),
        }
    }
}

/// The checkpoint file of generation `gen` under `dir`.
pub fn checkpoint_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("checkpoint-g{gen}.psic"))
}

/// The WAL segment of generation `gen` under `dir`.
pub fn wal_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-g{gen}.log"))
}

// -------------------------------------------------------------- checkpoint

fn put_rect<T: WireCoord, const D: usize>(out: &mut Vec<u8>, r: &Rect<T, D>) {
    for c in r.lo.coords {
        out.extend_from_slice(&c.to_wire());
    }
    for c in r.hi.coords {
        out.extend_from_slice(&c.to_wire());
    }
}

/// Serialize `points` at epoch watermark `epoch` into the checkpoint file at
/// `path`, atomically: the bytes land in `<path>.tmp`, are fsynced, and are
/// renamed over `path` only then — a crash mid-write never damages an
/// existing checkpoint.
pub fn write_checkpoint<T: WireCoord, const D: usize>(
    path: &Path,
    epoch: u64,
    universe: &Rect<T, D>,
    points: &[Point<T, D>],
) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(CK_HEADER + (2 + points.len()) * D * 8 + 4);
    buf.extend_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
    buf.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    buf.push(T::TAG);
    buf.push(D as u8);
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&(points.len() as u64).to_le_bytes());
    put_rect(&mut buf, universe);
    for p in points {
        for c in p.coords {
            buf.extend_from_slice(&c.to_wire());
        }
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());

    let tmp = path.with_extension("psic.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Make the rename itself durable (best effort: not every filesystem
    // supports fsync on a directory handle).
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// A validated checkpoint: the base state recovery rebuilds from.
#[derive(Debug)]
pub struct Checkpoint<T: WireCoord, const D: usize> {
    /// The global epoch watermark the snapshot was taken at.
    pub epoch: u64,
    /// The serving universe (stripe cuts derive from it).
    pub universe: Rect<T, D>,
    /// The stored points — the build array for [`crate::IndexFactory`].
    pub points: Vec<Point<T, D>>,
}

/// Read and validate a checkpoint file. Any defect — unreadable file, alien
/// magic/version, shape mismatch, truncation, CRC failure — is an `Err`
/// describing it; hostile bytes never panic and never allocate beyond the
/// file's actual size.
pub fn read_checkpoint<T: WireCoord, const D: usize>(
    path: &Path,
) -> Result<Checkpoint<T, D>, String> {
    let mut buf = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut buf))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let fail = |what: &str| Err(format!("{}: {what}", path.display()));
    if buf.len() < CK_HEADER + 2 * D * 8 + 4 {
        return fail("truncated (shorter than the fixed header)");
    }
    let magic = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
    if magic != CHECKPOINT_MAGIC {
        return fail("bad magic");
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().expect("2 bytes"));
    if version != CHECKPOINT_VERSION {
        return fail(&format!("unsupported version {version}"));
    }
    if buf[6] != T::TAG || buf[7] != D as u8 {
        return fail(&format!(
            "shape mismatch: file is tag {} dims {}, server serves tag {} dims {D}",
            buf[6],
            buf[7],
            T::TAG
        ));
    }
    let epoch = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    let count = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
    let need = (count as usize)
        .checked_mul(D * 8)
        .and_then(|n| n.checked_add(CK_HEADER + 2 * D * 8 + 4))
        .ok_or_else(|| format!("{}: point count overflows", path.display()))?;
    if buf.len() != need {
        return fail(&format!(
            "length {} disagrees with declared count {count}",
            buf.len()
        ));
    }
    let crc_at = buf.len() - 4;
    let stored = u32::from_le_bytes(buf[crc_at..].try_into().expect("4 bytes"));
    let computed = crc32(&buf[..crc_at]);
    if stored != computed {
        return fail(&format!(
            "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
        ));
    }

    let mut words = buf[CK_HEADER..crc_at].chunks_exact(8);
    let mut next_point = || -> Point<T, D> {
        let mut coords = [T::ZERO; D];
        for c in coords.iter_mut() {
            let w = words.next().expect("length validated above");
            *c = T::from_wire(w.try_into().expect("8 bytes"));
        }
        Point::new(coords)
    };
    let lo = next_point();
    let hi = next_point();
    let points = (0..count).map(|_| next_point()).collect();
    Ok(Checkpoint {
        epoch,
        universe: Rect::from_corners(lo, hi),
        points,
    })
}

// ---------------------------------------------------------------- recovery

/// What [`recover`] found on disk.
pub struct RecoveryReport<T: WireCoord, const D: usize> {
    /// `Some` when a valid checkpoint anchored recovery; `None` means a
    /// fresh start (empty directory, or nothing on disk was salvageable —
    /// the warnings say which).
    pub state: Option<Recovered<T, D>>,
    /// The generation the recovered (or fresh) server should write next.
    pub next_gen: u64,
    /// Everything that was dropped, skipped, or fell back — one line each.
    pub warnings: Vec<String>,
}

/// A recovered base state plus the WAL tail to replay on top of it.
pub struct Recovered<T: WireCoord, const D: usize> {
    /// The checkpoint watermark the base state rebuilds at.
    pub base_epoch: u64,
    /// The universe recorded in the checkpoint (authoritative across a
    /// restart, so stripe cuts match what the WAL records were split by).
    pub universe: Rect<T, D>,
    /// The checkpointed points (build array at `base_epoch`).
    pub points: Vec<Point<T, D>>,
    /// WAL records with epochs `base_epoch + 1 ..= base_epoch + tail.len()`,
    /// in replay order.
    pub tail: Vec<WalRecord<T, D>>,
}

impl<T: WireCoord, const D: usize> Recovered<T, D> {
    /// The epoch the server arrives at once the tail is replayed.
    pub fn final_epoch(&self) -> u64 {
        self.base_epoch + self.tail.len() as u64
    }
}

fn parse_gen(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// Scan `dir` and recover the newest consistent state (see the module
/// docs). `Err` only for an unusable directory (cannot create or list it);
/// everything found *inside* degrades gracefully into warnings.
pub fn recover<T: WireCoord, const D: usize>(dir: &Path) -> std::io::Result<RecoveryReport<T, D>> {
    OBS_RECOVERIES.bump();
    fs::create_dir_all(dir)?;
    let mut ck_gens: Vec<u64> = Vec::new();
    let mut wal_gens: Vec<u64> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(g) = parse_gen(name, "checkpoint-g", ".psic") {
            ck_gens.push(g);
        } else if let Some(g) = parse_gen(name, "wal-g", ".log") {
            wal_gens.push(g);
        }
    }
    ck_gens.sort_unstable();
    wal_gens.sort_unstable();
    let next_gen = ck_gens
        .iter()
        .chain(wal_gens.iter())
        .max()
        .map_or(1, |g| g + 1);
    let mut warnings = Vec::new();

    // Newest checkpoint that validates anchors the recovery.
    for &ck_gen in ck_gens.iter().rev() {
        let ck = match read_checkpoint::<T, D>(&checkpoint_path(dir, ck_gen)) {
            Ok(ck) => ck,
            Err(e) => {
                warnings.push(format!(
                    "checkpoint generation {ck_gen} rejected ({e}); falling back"
                ));
                continue;
            }
        };
        // Chain WAL segments from the anchor generation forward.
        let mut tail: Vec<WalRecord<T, D>> = Vec::new();
        let mut current = ck.epoch;
        for &wg in wal_gens.iter().filter(|&&g| g >= ck_gen) {
            let path = wal_path(dir, wg);
            let seg: WalSegment<T, D> = match wal::read_segment(&path) {
                Ok(seg) => seg,
                Err(e) => {
                    warnings.push(format!(
                        "wal generation {wg} unreadable ({e}); replay stops at epoch {current}"
                    ));
                    break;
                }
            };
            if seg.base_epoch > current {
                warnings.push(format!(
                    "wal generation {wg} starts at epoch {} but replay reached {current}; \
                     gap — replay stops here",
                    seg.base_epoch
                ));
                break;
            }
            // A segment may overlap what is already replayed (its base is
            // older than `current`); keep only the new suffix.
            let mut usable = true;
            for rec in seg.records {
                if rec.epoch <= current {
                    continue;
                }
                if rec.epoch != current + 1 {
                    warnings.push(format!(
                        "wal generation {wg}: epoch jump to {} after {current}; \
                         replay stops here",
                        rec.epoch
                    ));
                    usable = false;
                    break;
                }
                current += 1;
                tail.push(rec);
            }
            if let Some(dropped) = seg.dropped {
                warnings.push(format!(
                    "wal generation {wg}: {dropped}; replay stops at epoch {current}"
                ));
                usable = false;
            }
            if !usable {
                break;
            }
        }
        OBS_RECOVERY_WARNINGS.add(warnings.len() as u64);
        return Ok(RecoveryReport {
            state: Some(Recovered {
                base_epoch: ck.epoch,
                universe: ck.universe,
                points: ck.points,
                tail,
            }),
            next_gen,
            warnings,
        });
    }

    if !ck_gens.is_empty() || !wal_gens.is_empty() {
        warnings.push(
            "no checkpoint validated; starting fresh (applied batches on disk are lost)"
                .to_string(),
        );
    }
    OBS_RECOVERY_WARNINGS.add(warnings.len() as u64);
    Ok(RecoveryReport {
        state: None,
        next_gen,
        warnings,
    })
}

/// Delete checkpoint and WAL files of generations older than `keep_from`.
/// Failures are reported, not fatal — stale files only cost disk.
pub fn retire_generations(dir: &Path, keep_from: u64) -> Vec<String> {
    let mut warnings = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return warnings;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let gen =
            parse_gen(name, "checkpoint-g", ".psic").or_else(|| parse_gen(name, "wal-g", ".log"));
        if let Some(g) = gen {
            if g < keep_from {
                if let Err(e) = fs::remove_file(entry.path()) {
                    warnings.push(format!("could not retire {name}: {e}"));
                }
            }
        }
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalWriter;
    use psi_geometry::PointI;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("psi-durability-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn uni() -> Rect<i64, 2> {
        Rect::from_corners(Point::new([0, 0]), Point::new([1_000, 1_000]))
    }

    fn pts(range: std::ops::Range<i64>) -> Vec<PointI<2>> {
        range.map(|i| Point::new([i, i * 3])).collect()
    }

    #[test]
    fn checkpoint_round_trips_and_rejects_damage() {
        let dir = tempdir("ckpt");
        let path = checkpoint_path(&dir, 1);
        let points = pts(0..100);
        write_checkpoint(&path, 42, &uni(), &points).unwrap();
        let ck = read_checkpoint::<i64, 2>(&path).unwrap();
        assert_eq!(ck.epoch, 42);
        assert_eq!(ck.universe, uni());
        assert_eq!(ck.points, points);

        // Truncation and byte flips are rejected with a reason, no panic.
        let clean = fs::read(&path).unwrap();
        for cut in [0, 3, CK_HEADER, clean.len() - 1] {
            fs::write(&path, &clean[..cut]).unwrap();
            assert!(read_checkpoint::<i64, 2>(&path).is_err(), "cut {cut}");
        }
        for i in [0usize, 6, 10, 30, clean.len() - 2] {
            let mut bad = clean.clone();
            bad[i] ^= 0x20;
            fs::write(&path, &bad).unwrap();
            assert!(read_checkpoint::<i64, 2>(&path).is_err(), "flip {i}");
        }
        // f64 shape against an i64 reader.
        write_checkpoint::<f64, 2>(
            &path,
            1,
            &Rect::from_corners(Point::new([0.0, 0.0]), Point::new([1.0, 1.0])),
            &[],
        )
        .unwrap();
        let err = read_checkpoint::<i64, 2>(&path).unwrap_err();
        assert!(err.contains("shape mismatch"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_empty_dir_is_fresh() {
        let dir = tempdir("fresh");
        let report = recover::<i64, 2>(&dir).unwrap();
        assert!(report.state.is_none());
        assert_eq!(report.next_gen, 1);
        assert!(report.warnings.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_checkpoint_plus_tail() {
        let dir = tempdir("tail");
        write_checkpoint(&checkpoint_path(&dir, 1), 10, &uni(), &pts(0..50)).unwrap();
        let mut w =
            WalWriter::<i64, 2>::create(&wal_path(&dir, 1), 10, FsyncPolicy::EveryBatch).unwrap();
        for e in 11..=13u64 {
            w.append(e, &pts(0..2), &pts(100..105)).unwrap();
        }
        drop(w);

        let report = recover::<i64, 2>(&dir).unwrap();
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        assert_eq!(report.next_gen, 2);
        let state = report.state.unwrap();
        assert_eq!(state.base_epoch, 10);
        assert_eq!(state.points.len(), 50);
        assert_eq!(state.tail.len(), 3);
        assert_eq!(state.final_epoch(), 13);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_a_generation() {
        let dir = tempdir("fallback");
        // Generation 1: checkpoint at 0, wal with epochs 1..=4.
        write_checkpoint(&checkpoint_path(&dir, 1), 0, &uni(), &pts(0..20)).unwrap();
        let mut w = WalWriter::<i64, 2>::create(&wal_path(&dir, 1), 0, FsyncPolicy::Os).unwrap();
        for e in 1..=4u64 {
            w.append(e, &[], &pts(e as i64 * 10..e as i64 * 10 + 3))
                .unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // Generation 2: checkpoint at 4 — then truncate it (torn write).
        write_checkpoint(&checkpoint_path(&dir, 2), 4, &uni(), &pts(0..32)).unwrap();
        let ck2 = checkpoint_path(&dir, 2);
        let len = fs::metadata(&ck2).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&ck2).unwrap();
        f.set_len(len / 2).unwrap();
        drop(f);
        // Generation 2 wal continues 5..=6.
        let mut w = WalWriter::<i64, 2>::create(&wal_path(&dir, 2), 4, FsyncPolicy::Os).unwrap();
        for e in 5..=6u64 {
            w.append(e, &[], &pts(200..202)).unwrap();
        }
        w.sync().unwrap();
        drop(w);

        let report = recover::<i64, 2>(&dir).unwrap();
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("generation 2 rejected")),
            "{:?}",
            report.warnings
        );
        let state = report.state.unwrap();
        // Fell back to generation 1's checkpoint, then chained BOTH wal
        // segments (gen 1 epochs 1..=4, gen 2 epochs 5..=6).
        assert_eq!(state.base_epoch, 0);
        assert_eq!(state.tail.len(), 6);
        assert_eq!(state.final_epoch(), 6);
        assert_eq!(report.next_gen, 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_recovers_to_last_good_epoch() {
        let dir = tempdir("torn");
        write_checkpoint(&checkpoint_path(&dir, 1), 0, &uni(), &pts(0..10)).unwrap();
        let mut w = WalWriter::<i64, 2>::create(&wal_path(&dir, 1), 0, FsyncPolicy::Os).unwrap();
        for e in 1..=5u64 {
            w.append(e, &[], &pts(0..4)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // Flip a byte inside the 4th record's body.
        let path = wal_path(&dir, 1);
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() - 100;
        bytes[at] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let report = recover::<i64, 2>(&dir).unwrap();
        let state = report.state.unwrap();
        assert!(state.final_epoch() < 5, "corrupt record must stop replay");
        assert!(
            report.warnings.iter().any(|w| w.contains("crc mismatch")),
            "{:?}",
            report.warnings
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retire_keeps_recent_generations() {
        let dir = tempdir("retire");
        for g in 1..=4u64 {
            write_checkpoint(&checkpoint_path(&dir, g), g, &uni(), &[]).unwrap();
            WalWriter::<i64, 2>::create(&wal_path(&dir, g), g, FsyncPolicy::Os).unwrap();
        }
        let warnings = retire_generations(&dir, 3);
        assert!(warnings.is_empty());
        for g in 1..=2u64 {
            assert!(!checkpoint_path(&dir, g).exists());
            assert!(!wal_path(&dir, g).exists());
        }
        for g in 3..=4u64 {
            assert!(checkpoint_path(&dir, g).exists());
            assert!(wal_path(&dir, g).exists());
        }
        fs::remove_dir_all(&dir).ok();
    }
}
