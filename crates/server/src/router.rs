//! Spatial shard router: partition the keyspace into stripes, fan queries
//! out to the shards that can contribute, and merge the answers.
//!
//! The domain is cut into `S` equal stripes along dimension 0 (the classic
//! range-sharding layout; stripe boundaries are fixed at construction).
//! Every point lives in exactly one shard — the one whose stripe contains
//! its first coordinate — so:
//!
//! * **range queries** fan out to the shards whose stripe intersects the
//!   box and *sum/concatenate* (disjointness means no deduplication),
//! * **kNN queries** need a best-`k` merge: each contributing shard returns
//!   its `k` nearest and the router keeps the `k` best overall, pruning
//!   shards whose stripe is farther than the current `k`-th distance. The
//!   batched path ([`RouterView::knn_batch`]) does this in two phases —
//!   answer every query in its *home* shard first (one batch per shard),
//!   then spill only the queries whose `k`-th distance reaches past their
//!   stripe into the neighbouring shards (one more batch per shard) — so
//!   the common case costs one batch dispatch per shard, not per query.
//!
//! Reads run against a [`RouterView`]: the set of shard snapshots pinned at
//! one instant. Each shard publishes its own epochs, so a view is *per-shard
//! consistent* (no shard is ever observed mid-batch); a batch that spans
//! shards becomes visible shard by shard. Updates routed through
//! [`Router::publish`] are split by stripe and published per shard.
//!
//! On top of the per-shard epochs the router keeps one **global epoch**
//! counter — the number of batches published through it — and, when every
//! shard is [persistent](Shard::is_persistent), a bounded **epoch history**:
//! the pinned view of each recent global epoch. [`Router::pin_at`] serves
//! "as of epoch N" time-travel queries from that log. The log is gated on
//! persistence because retained views are nearly free there (structural
//! sharing); under the left-right fallback they would pin old copies and
//! stall the writer, so non-persistent routers keep no history and answer
//! `pin_at` with `None`.

use crate::shard::{IndexFactory, Shard, Snapshot, SnapshotRef};
use psi_geometry::{Coord, KnnHeap, Point, Rect};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Epoch-history entries dropped by the count or byte bound.
static OBS_EVICTIONS: psi_obs::LazyCounter = psi_obs::LazyCounter::new(
    "psi_serve_epoch_evictions_total",
    "time-travel history entries evicted by the count or byte bound",
);

/// Global epochs a persistent router keeps pinned for time-travel queries
/// when no explicit history depth is configured.
pub const DEFAULT_EPOCH_HISTORY: usize = 8;

/// Coordinate types the router can cut into stripes (everything [`Coord`]
/// plus exact interpolation of stripe boundaries).
pub trait ServeCoord: Coord {
    /// `lo + (hi - lo) * num / den`, computed without overflow; used to
    /// place stripe boundaries.
    fn lerp(lo: Self, hi: Self, num: usize, den: usize) -> Self;
}

impl ServeCoord for i64 {
    fn lerp(lo: Self, hi: Self, num: usize, den: usize) -> Self {
        let span = (hi as i128) - (lo as i128);
        (lo as i128 + span * num as i128 / den as i128) as i64
    }
}

impl ServeCoord for f64 {
    fn lerp(lo: Self, hi: Self, num: usize, den: usize) -> Self {
        lo + (hi - lo) * (num as f64 / den as f64)
    }
}

/// A set of shards covering the domain in dimension-0 stripes.
pub struct Router<T: ServeCoord, const D: usize> {
    shards: Vec<Shard<T, D>>,
    /// `cuts[i]` is the lower dimension-0 bound of shard `i`'s stripe
    /// (`cuts[0]` is the domain's low edge; points below it route to
    /// shard 0, points past the last cut to the last shard).
    cuts: Vec<T>,
    /// Global epoch counter plus the bounded time-travel log (empty when
    /// any shard is non-persistent — see the module docs).
    history: Mutex<History<T, D>>,
    /// Per-shard publish-latency histograms (`shard` label), resolved once
    /// at construction so the publish path never touches the registry.
    publish_hist: Vec<Arc<psi_obs::Histogram>>,
}

struct HistoryEntry<T: Coord, const D: usize> {
    epoch: u64,
    view: RouterView<T, D>,
    /// Estimated retained bytes this entry adds beyond the live tree: the
    /// copy-on-write spine a persistent publish duplicates is proportional
    /// to the batch, so the estimate charges the batch's point payload plus
    /// a fixed per-entry overhead.
    bytes: usize,
}

struct History<T: Coord, const D: usize> {
    /// Retained epochs, oldest first; at most `cap` entries.
    log: VecDeque<HistoryEntry<T, D>>,
    /// Batches published through the router so far.
    epoch: u64,
    /// 0 disables the log (left-right shards present, or configured off).
    cap: usize,
    /// Byte budget across retained entries; 0 = unbounded (count bound
    /// only). The newest entry is always kept, even when over budget.
    byte_cap: usize,
    /// Estimated bytes currently retained (sum of entry costs).
    bytes: usize,
}

/// Fixed per-entry overhead charged against the byte budget (snapshot Arcs,
/// the log slot, spine nodes a tiny batch still copies).
const HISTORY_ENTRY_OVERHEAD: usize = 64;

/// Conservative stripe box for pruning: unbounded in every dimension except
/// the stripe's dimension-0 slice, and closed on both cuts (a boundary point
/// lives in exactly one shard, but for *pruning* an overestimate is safe).
fn stripe_region<T: Coord, const D: usize>(lo: Option<T>, hi: Option<T>) -> Rect<T, D> {
    let mut lo_pt = [T::MIN_VALUE; D];
    let mut hi_pt = [T::MAX_VALUE; D];
    if let Some(l) = lo {
        lo_pt[0] = l;
    }
    if let Some(h) = hi {
        hi_pt[0] = h;
    }
    Rect::from_corners(Point::new(lo_pt), Point::new(hi_pt))
}

impl<T: ServeCoord, const D: usize> Router<T, D> {
    /// Partition `points` into `shard_count` stripes of `universe` along
    /// dimension 0 and build one [`Shard`] per stripe, keeping the default
    /// epoch-history depth ([`DEFAULT_EPOCH_HISTORY`]).
    pub fn new(
        factory: &IndexFactory<T, D>,
        points: &[Point<T, D>],
        universe: &Rect<T, D>,
        shard_count: usize,
    ) -> Self {
        Self::with_history(
            factory,
            points,
            universe,
            shard_count,
            DEFAULT_EPOCH_HISTORY,
        )
    }

    /// As [`Router::new`], with an explicit epoch-history depth: how many
    /// recent global epochs stay pinned for [`Router::pin_at`]. Takes
    /// effect only when every shard is persistent; `0` disables the log.
    pub fn with_history(
        factory: &IndexFactory<T, D>,
        points: &[Point<T, D>],
        universe: &Rect<T, D>,
        shard_count: usize,
        epoch_history: usize,
    ) -> Self {
        Self::with_history_at(factory, points, universe, shard_count, epoch_history, 0, 0)
    }

    /// The fully-general constructor: an explicit epoch-history depth, an
    /// additional **byte budget** for the history (`0` = count bound only;
    /// estimated retained bytes per entry are charged as batch payload plus
    /// a fixed overhead, and the newest entry is always kept), and a
    /// starting global epoch — crash recovery seeds `base_epoch` at the
    /// checkpoint watermark so epoch numbers continue across a restart.
    pub fn with_history_at(
        factory: &IndexFactory<T, D>,
        points: &[Point<T, D>],
        universe: &Rect<T, D>,
        shard_count: usize,
        epoch_history: usize,
        epoch_history_bytes: usize,
        base_epoch: u64,
    ) -> Self {
        assert!(shard_count >= 1, "a router needs at least one shard");
        let cuts: Vec<T> = (0..shard_count)
            .map(|i| T::lerp(universe.lo.coords[0], universe.hi.coords[0], i, shard_count))
            .collect();
        let mut parts: Vec<Vec<Point<T, D>>> = vec![Vec::new(); shard_count];
        for p in points {
            parts[shard_of(&cuts, p)].push(*p);
        }
        let shards: Vec<Shard<T, D>> = (0..shard_count)
            .map(|i| {
                let lo = (i > 0).then(|| cuts[i]);
                let hi = (i + 1 < shard_count).then(|| cuts[i + 1]);
                Shard::with_epoch(stripe_region(lo, hi), factory, &parts[i], base_epoch)
            })
            .collect();
        let cap = if shards.iter().all(Shard::is_persistent) {
            epoch_history
        } else {
            0
        };
        let publish_hist = (0..shard_count)
            .map(|i| {
                psi_obs::histogram(
                    "psi_serve_publish_latency_ns",
                    "wall time one shard spends applying and publishing a sub-batch",
                    &[("shard", &i.to_string())],
                )
            })
            .collect();
        let router = Router {
            shards,
            cuts,
            publish_hist,
            history: Mutex::new(History {
                log: VecDeque::new(),
                epoch: base_epoch,
                cap,
                byte_cap: epoch_history_bytes,
                bytes: 0,
            }),
        };
        if cap > 0 {
            let initial = router.pin();
            let mut h = router.history.lock().unwrap();
            h.bytes = HISTORY_ENTRY_OVERHEAD;
            h.log.push_back(HistoryEntry {
                epoch: base_epoch,
                view: initial,
                bytes: HISTORY_ENTRY_OVERHEAD,
            });
        }
        router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to a shard (tests, epoch inspection).
    pub fn shard(&self, i: usize) -> &Shard<T, D> {
        &self.shards[i]
    }

    /// The shard a point routes to.
    pub fn shard_of(&self, p: &Point<T, D>) -> usize {
        shard_of(&self.cuts, p)
    }

    /// Pin every shard's current snapshot as one read view.
    pub fn pin(&self) -> RouterView<T, D> {
        RouterView {
            snaps: self.shards.iter().map(Shard::pin).collect(),
            regions: self.shards.iter().map(|s| *s.region()).collect(),
            cuts: self.cuts.clone(),
        }
    }

    /// Split a batch by stripe and publish it per shard (deletions before
    /// insertions, per the `BatchDiff` contract). Shards whose sub-batch is
    /// empty keep their current epoch. Bumps the global epoch by one and,
    /// on persistent routers, records the new view in the time-travel log.
    /// Returns the number of shards that published a new epoch. Callers
    /// must serialise publishes (the server runs one writer thread).
    pub fn publish(&self, delete: &[Point<T, D>], insert: &[Point<T, D>]) -> usize {
        let split = |pts: &[Point<T, D>]| {
            let mut parts: Vec<Vec<Point<T, D>>> = vec![Vec::new(); self.shards.len()];
            for p in pts {
                parts[shard_of(&self.cuts, p)].push(*p);
            }
            parts
        };
        let dels = split(delete);
        let inss = split(insert);
        let mut published = 0;
        for (i, shard) in self.shards.iter().enumerate() {
            if dels[i].is_empty() && inss[i].is_empty() {
                continue;
            }
            let t0 = std::time::Instant::now();
            shard.publish(&dels[i], &inss[i]);
            self.publish_hist[i].record_duration(t0.elapsed());
            published += 1;
        }
        let mut h = self.history.lock().unwrap();
        h.epoch += 1;
        if h.cap > 0 {
            let epoch = h.epoch;
            let view = self.pin();
            let bytes = (delete.len() + insert.len()) * D * 8 + HISTORY_ENTRY_OVERHEAD;
            h.bytes += bytes;
            h.log.push_back(HistoryEntry { epoch, view, bytes });
            while h.log.len() > h.cap || (h.byte_cap > 0 && h.bytes > h.byte_cap && h.log.len() > 1)
            {
                if let Some(evicted) = h.log.pop_front() {
                    h.bytes -= evicted.bytes;
                    OBS_EVICTIONS.bump();
                }
            }
        }
        published
    }

    /// The global epoch: batches published through this router so far.
    pub fn epoch(&self) -> u64 {
        self.history.lock().unwrap().epoch
    }

    /// `true` when every shard runs in persistent mode (one live tree per
    /// shard, `O(1)` publishes, epoch history available).
    pub fn is_persistent(&self) -> bool {
        self.shards.iter().all(Shard::is_persistent)
    }

    /// The view recorded at global `epoch`, if it is still in the history
    /// window. `None` for evicted or future epochs, and always `None` on
    /// non-persistent routers (no history is kept — see the module docs).
    pub fn pin_at(&self, epoch: u64) -> Option<RouterView<T, D>> {
        let h = self.history.lock().unwrap();
        h.log
            .iter()
            .find(|entry| entry.epoch == epoch)
            .map(|entry| entry.view.clone())
    }

    /// The `(oldest, newest)` global epochs currently answerable by
    /// [`Router::pin_at`]; `None` when no history is kept.
    pub fn epoch_bounds(&self) -> Option<(u64, u64)> {
        let h = self.history.lock().unwrap();
        match (h.log.front(), h.log.back()) {
            (Some(first), Some(last)) => Some((first.epoch, last.epoch)),
            _ => None,
        }
    }

    /// Total stored points across the current shard epochs.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// `true` if no shard stores any point.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn shard_of<T: Coord, const D: usize>(cuts: &[T], p: &Point<T, D>) -> usize {
    // Largest i with cuts[i] <= p[0]; points below the first cut clamp to 0.
    cuts.partition_point(|c| c.total_cmp(&p.coords[0]) != std::cmp::Ordering::Greater)
        .saturating_sub(1)
}

/// A consistent-per-shard read view: every shard's snapshot pinned at one
/// instant (see the module docs for the consistency contract). Cloning is
/// cheap — it re-pins the same snapshots.
pub struct RouterView<T: Coord, const D: usize> {
    snaps: Vec<SnapshotRef<T, D>>,
    regions: Vec<Rect<T, D>>,
    cuts: Vec<T>,
}

impl<T: Coord, const D: usize> Clone for RouterView<T, D> {
    fn clone(&self) -> Self {
        RouterView {
            snaps: self.snaps.clone(),
            regions: self.regions.clone(),
            cuts: self.cuts.clone(),
        }
    }
}

impl<T: Coord, const D: usize> RouterView<T, D> {
    /// Per-shard epochs of this view, in shard order.
    pub fn epochs(&self) -> Vec<u64> {
        self.snaps.iter().map(|s| s.epoch()).collect()
    }

    /// One pinned shard snapshot.
    pub fn snapshot(&self, i: usize) -> &Snapshot<T, D> {
        &self.snaps[i]
    }

    /// Number of shards in the view.
    pub fn shard_count(&self) -> usize {
        self.snaps.len()
    }

    /// The shard a point routes to (same cut table as the router).
    pub fn shard_of(&self, p: &Point<T, D>) -> usize {
        shard_of(&self.cuts, p)
    }

    /// Total stored points in this view.
    pub fn len(&self) -> usize {
        self.snaps.iter().map(|s| s.len()).sum()
    }

    /// `true` if the view holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k` nearest neighbours of `q` across all shards, closest first:
    /// query shards in stripe-distance order, keep the best `k`, stop as
    /// soon as the next stripe cannot improve on the `k`-th distance.
    pub fn knn(&self, q: &Point<T, D>, k: usize) -> Vec<Point<T, D>> {
        if k == 0 || self.snaps.is_empty() {
            return Vec::new();
        }
        let mut order: Vec<(T::Dist, usize)> = self
            .regions
            .iter()
            .enumerate()
            .map(|(i, r)| (r.dist_sq_to_point(q), i))
            .collect();
        order.sort_by(|a, b| T::dist_cmp(a.0, b.0).then(a.1.cmp(&b.1)));
        let mut heap = KnnHeap::new(k);
        for (dist, i) in order {
            if heap.is_full() && !heap.could_improve(dist) {
                break; // sorted by stripe distance: nothing further helps
            }
            for p in self.snaps[i].index().knn(q, k) {
                heap.offer_point(q, p);
            }
        }
        heap.into_sorted()
    }

    /// Batched best-`k` merge (see the module docs): phase 1 answers every
    /// query in its home shard (one `knn_batch` per shard), phase 2 spills
    /// only the queries whose `k`-th distance reaches past their stripe.
    pub fn knn_batch(&self, queries: &[Point<T, D>], k: usize) -> Vec<Vec<Point<T, D>>> {
        if k == 0 || queries.is_empty() {
            return vec![Vec::new(); queries.len()];
        }
        if self.snaps.len() == 1 {
            return self.snaps[0].index().knn_batch(queries, k);
        }

        // Phase 1: group by home shard, one batch per shard.
        let s = self.snaps.len();
        let mut per_shard: Vec<(Vec<Point<T, D>>, Vec<usize>)> = vec![Default::default(); s];
        for (qi, q) in queries.iter().enumerate() {
            let home = shard_of(&self.cuts, q);
            per_shard[home].0.push(*q);
            per_shard[home].1.push(qi);
        }
        let mut answers: Vec<Vec<Point<T, D>>> = vec![Vec::new(); queries.len()];
        for (si, (qs, idxs)) in per_shard.iter().enumerate() {
            if qs.is_empty() {
                continue;
            }
            for (ans, &qi) in self.snaps[si]
                .index()
                .knn_batch(qs, k)
                .into_iter()
                .zip(idxs)
            {
                answers[qi] = ans;
            }
        }

        // Phase 2: spill queries whose k-th distance reaches into another
        // stripe (or that found fewer than k at home).
        let mut spill: Vec<(Vec<Point<T, D>>, Vec<usize>)> = vec![Default::default(); s];
        for (qi, q) in queries.iter().enumerate() {
            let home = shard_of(&self.cuts, q);
            let bound = if answers[qi].len() == k {
                Some(q.dist_sq(answers[qi].last().expect("k >= 1 answers")))
            } else {
                None // under-full: every shard could contribute
            };
            for (si, sp) in spill.iter_mut().enumerate() {
                if si == home {
                    continue;
                }
                let reaches = match bound {
                    None => true,
                    Some(b) => {
                        T::dist_cmp(self.regions[si].dist_sq_to_point(q), b)
                            == std::cmp::Ordering::Less
                    }
                };
                if reaches {
                    sp.0.push(*q);
                    sp.1.push(qi);
                }
            }
        }
        let mut merged: Vec<Option<KnnHeap<T, D>>> = (0..queries.len()).map(|_| None).collect();
        for (si, (qs, idxs)) in spill.iter().enumerate() {
            if qs.is_empty() {
                continue;
            }
            for (ans, &qi) in self.snaps[si]
                .index()
                .knn_batch(qs, k)
                .into_iter()
                .zip(idxs)
            {
                let heap = merged[qi].get_or_insert_with(|| {
                    let mut h = KnnHeap::new(k);
                    for p in &answers[qi] {
                        h.offer_point(&queries[qi], *p);
                    }
                    h
                });
                for p in ans {
                    heap.offer_point(&queries[qi], p);
                }
            }
        }
        for (qi, heap) in merged.into_iter().enumerate() {
            if let Some(h) = heap {
                answers[qi] = h.into_sorted();
            }
        }
        answers
    }

    /// Number of stored points in the box, fanned out per intersecting
    /// shard and summed (stripes are disjoint, so no deduplication).
    pub fn range_count(&self, rect: &Rect<T, D>) -> usize {
        self.snaps
            .iter()
            .zip(&self.regions)
            .filter(|(_, region)| region.intersects(rect))
            .map(|(snap, _)| snap.index().range_count(rect))
            .sum()
    }

    /// Batched range counts: one `range_count_batch` per shard over the
    /// rects that intersect its stripe.
    pub fn range_count_batch(&self, rects: &[Rect<T, D>]) -> Vec<usize> {
        let mut out = vec![0usize; rects.len()];
        for (snap, region) in self.snaps.iter().zip(&self.regions) {
            let (sub, idxs): (Vec<Rect<T, D>>, Vec<usize>) = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| region.intersects(r))
                .map(|(i, r)| (*r, i))
                .unzip();
            if sub.is_empty() {
                continue;
            }
            for (count, &i) in snap.index().range_count_batch(&sub).into_iter().zip(&idxs) {
                out[i] += count;
            }
        }
        out
    }

    /// The stored points in the box, concatenated in shard order.
    pub fn range_list(&self, rect: &Rect<T, D>) -> Vec<Point<T, D>> {
        let mut out = Vec::new();
        for (snap, region) in self.snaps.iter().zip(&self.regions) {
            if region.intersects(rect) {
                snap.index().range_visit(rect, &mut |p| out.push(*p));
            }
        }
        out
    }

    /// Batched range lists: one `range_list_batch` per intersecting shard,
    /// answers concatenated in shard order per rect.
    pub fn range_list_batch(&self, rects: &[Rect<T, D>]) -> Vec<Vec<Point<T, D>>> {
        let mut out: Vec<Vec<Point<T, D>>> = vec![Vec::new(); rects.len()];
        for (snap, region) in self.snaps.iter().zip(&self.regions) {
            let (sub, idxs): (Vec<Rect<T, D>>, Vec<usize>) = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| region.intersects(r))
                .map(|(i, r)| (*r, i))
                .unzip();
            if sub.is_empty() {
                continue;
            }
            for (list, &i) in snap.index().range_list_batch(&sub).into_iter().zip(&idxs) {
                out[i].extend(list);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi::registry::{self, BuildOptions};
    use psi::BruteForce;
    use psi::SpatialIndex as _;
    use psi_geometry::PointI;
    use psi_workloads as workloads;
    use std::sync::Arc;

    fn factory() -> IndexFactory<i64, 2> {
        named_factory("spac-h")
    }

    fn named_factory(name: &'static str) -> IndexFactory<i64, 2> {
        Arc::new(move |pts: &[PointI<2>]| {
            registry::create::<2>(name, pts, &BuildOptions::default()).unwrap()
        })
    }

    #[test]
    fn routing_is_total_and_disjoint() {
        let max = 1_000_000;
        let universe = workloads::universe::<2>(max);
        let data = workloads::uniform::<2>(5_000, max, 11);
        let router = Router::new(&factory(), &data, &universe, 4);
        assert_eq!(router.shard_count(), 4);
        assert_eq!(router.len(), data.len());
        // Every point routes to exactly the shard that stores it.
        let view = router.pin();
        for p in data.iter().take(200) {
            let si = router.shard_of(p);
            assert_eq!(view.shard_of(p), si);
            assert!(view.snapshot(si).index().range_count(&Rect::singleton(*p)) >= 1);
        }
        // Out-of-domain points clamp to the edge shards instead of panicking.
        assert_eq!(router.shard_of(&Point::new([-50, 0])), 0);
        assert_eq!(router.shard_of(&Point::new([max + 50, 0])), 3);
    }

    #[test]
    fn cross_shard_queries_match_brute_force() {
        let max = 100_000;
        let universe = workloads::universe::<2>(max);
        let data = workloads::varden::<2>(4_000, max, 3);
        let router = Router::new(&factory(), &data, &universe, 3);
        let oracle = BruteForce::<i64, 2>::build(&data, &universe);
        let view = router.pin();

        let queries = workloads::ind_queries(&data, 64, 9);
        let k = 12;
        // Batched two-phase answers == per-query merge == brute force.
        let batched = view.knn_batch(&queries, k);
        for (q, got) in queries.iter().zip(&batched) {
            let single = view.knn(q, k);
            let gd: Vec<i128> = got.iter().map(|p| q.dist_sq(p)).collect();
            let sd: Vec<i128> = single.iter().map(|p| q.dist_sq(p)).collect();
            let wd: Vec<i128> = oracle.knn(q, k).iter().map(|p| q.dist_sq(p)).collect();
            assert_eq!(gd, wd, "knn_batch disagrees with oracle");
            assert_eq!(sd, wd, "knn disagrees with oracle");
        }

        let rects = workloads::range_queries(&data, max, 80, 32, 5);
        assert_eq!(
            view.range_count_batch(&rects),
            rects
                .iter()
                .map(|r| oracle.range_count(r))
                .collect::<Vec<_>>()
        );
        for (r, mut got) in rects.iter().zip(view.range_list_batch(&rects)) {
            let mut single = view.range_list(r);
            let mut want = oracle.range_list(r);
            got.sort_unstable();
            single.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want);
            assert_eq!(single, want);
        }
    }

    #[test]
    fn publish_routes_batches_per_stripe() {
        let max = 90_000;
        let universe = workloads::universe::<2>(max);
        let data = workloads::uniform::<2>(3_000, max, 21);
        let router = Router::new(&factory(), &data, &universe, 3);
        let before = router.pin().epochs();
        assert_eq!(before, vec![0, 0, 0]);

        // A batch confined to the first stripe bumps only shard 0's epoch.
        let local: Vec<PointI<2>> = (0..40).map(|i| Point::new([i, i])).collect();
        let touched = router.publish(&[], &local);
        assert_eq!(touched, 1);
        assert_eq!(router.pin().epochs(), vec![1, 0, 0]);
        assert_eq!(router.len(), data.len() + 40);

        // A spanning batch touches every shard; deletions come first.
        let touched = router.publish(&local, &data[..6]);
        assert!(touched >= 2);
        assert_eq!(router.len(), data.len() + 6);
    }

    #[test]
    fn persistent_router_time_travels_within_its_history_window() {
        let max = 80_000;
        let universe = workloads::universe::<2>(max);
        let data = workloads::uniform::<2>(2_000, max, 13);
        let router = Router::with_history(&named_factory("cpam-h"), &data, &universe, 2, 4);
        assert!(router.is_persistent());
        assert_eq!(router.epoch(), 0);
        assert_eq!(router.epoch_bounds(), Some((0, 0)));
        assert_eq!(router.pin_at(0).unwrap().len(), data.len());

        // Six insert-only batches: epoch e holds data.len() + 5e points.
        for round in 0..6i64 {
            let ins: Vec<PointI<2>> = (0..5)
                .map(|i| Point::new([(round * 5 + i) * 11 % max, (round * 5 + i) * 7 % max]))
                .collect();
            router.publish(&[], &ins);
        }
        assert_eq!(router.epoch(), 6);
        // Depth-4 window: epochs 3..=6 answerable, older ones evicted.
        assert_eq!(router.epoch_bounds(), Some((3, 6)));
        for e in 3..=6u64 {
            let view = router.pin_at(e).expect("epoch within the window");
            assert_eq!(view.len(), data.len() + 5 * e as usize);
        }
        for e in 0..3u64 {
            assert!(router.pin_at(e).is_none(), "epoch {e} must be evicted");
        }
        assert!(router.pin_at(7).is_none(), "future epochs are unknown");
    }

    #[test]
    fn history_byte_budget_evicts_oldest_first() {
        let max = 80_000;
        let universe = workloads::universe::<2>(max);
        let data = workloads::uniform::<2>(1_000, max, 31);
        // Count bound generous (32); the byte budget is the binding
        // constraint. Each 50-point insert batch costs 50 * 2 * 8 + 64 =
        // 864 bytes, so a 3_000-byte budget holds at most 3 batch entries.
        let router =
            Router::with_history_at(&named_factory("cpam-h"), &data, &universe, 2, 32, 3_000, 0);
        for round in 0..10i64 {
            let ins: Vec<PointI<2>> = (0..50)
                .map(|i| Point::new([(round * 50 + i) * 13 % max, i * 17 % max]))
                .collect();
            router.publish(&[], &ins);
        }
        let (lo, hi) = router.epoch_bounds().unwrap();
        assert_eq!(hi, 10);
        assert!(lo >= 7, "byte budget must evict older epochs (lo = {lo})");
        assert!(router.pin_at(hi).is_some(), "newest epoch always kept");
        assert!(router.pin_at(lo.saturating_sub(1)).is_none());

        // A byte budget smaller than any entry still keeps the newest.
        let tiny = Router::with_history_at(&named_factory("cpam-h"), &data, &universe, 1, 32, 1, 0);
        tiny.publish(&[], &data[..50]);
        assert_eq!(tiny.epoch_bounds(), Some((1, 1)));
    }

    #[test]
    fn base_epoch_seeds_shards_and_history() {
        let max = 50_000;
        let universe = workloads::universe::<2>(max);
        let data = workloads::uniform::<2>(500, max, 37);
        let router =
            Router::with_history_at(&named_factory("spac-h"), &data, &universe, 2, 4, 0, 17);
        assert_eq!(router.epoch(), 17);
        assert_eq!(router.pin().epochs(), vec![17, 17]);
        assert_eq!(router.epoch_bounds(), Some((17, 17)));
        router.publish(&[], &data[..5]);
        assert_eq!(router.epoch(), 18);
        assert!(router.pin_at(18).is_some());
    }

    #[test]
    fn left_right_router_keeps_no_history() {
        let max = 40_000;
        let universe = workloads::universe::<2>(max);
        let data = workloads::uniform::<2>(1_000, max, 29);
        let router = Router::new(&named_factory("pkd"), &data, &universe, 2);
        assert!(!router.is_persistent());
        router.publish(&[], &data[..10]);
        assert_eq!(router.epoch(), 1);
        assert!(router.epoch_bounds().is_none());
        assert!(router.pin_at(0).is_none() && router.pin_at(1).is_none());
    }

    #[test]
    fn f64_router_works_through_quantised_families() {
        let universe = Rect::from_corners(Point::new([0.0, 0.0]), Point::new([1_000.0, 1_000.0]));
        let factory: IndexFactory<f64, 2> = Arc::new(|pts: &[Point<f64, 2>]| {
            registry::create_f64::<2>("zd", pts, &BuildOptions::default()).unwrap()
        });
        let data: Vec<Point<f64, 2>> = (0..2_000)
            .map(|i| Point::new([((i * 37) % 1_000) as f64, ((i * 91) % 1_000) as f64]))
            .collect();
        let router = Router::new(&factory, &data, &universe, 2);
        let oracle = BruteForce::<f64, 2>::build(&data, &universe);
        let view = router.pin();
        let q = Point::new([500.0, 500.0]);
        let gd: Vec<f64> = view.knn(&q, 9).iter().map(|p| q.dist_sq(p)).collect();
        let wd: Vec<f64> = oracle.knn(&q, 9).iter().map(|p| q.dist_sq(p)).collect();
        assert_eq!(gd, wd);
    }
}
