//! Epoch-published index snapshots: one shard of the serving subsystem.
//!
//! A [`Shard`] publishes an immutable, epoch-stamped [`Snapshot`] that
//! readers [`pin`](Shard::pin) and query lock-free; [`publish`](Shard::publish)
//! applies a `.psi`-style batch (deletions, then insertions) and atomically
//! swaps a new snapshot into the published slot under a new epoch number.
//! Readers never observe a half-applied batch: a pinned snapshot is
//! immutable for as long as the [`SnapshotRef`] is held, and the swap
//! replaces the whole pointer. *How* the next snapshot is produced depends
//! on the index family:
//!
//! * **Persistent mode** — families whose backbone is a functional
//!   (path-copying) tree, i.e. whose [`DynIndex::snapshot_dyn`] returns
//!   `Some` (the CPAM/SPaC PaC-trees), keep **one** live tree. A batch is
//!   applied in place — copy-on-write duplicates only the `O(batch · log n)`
//!   spine nodes it touches — and publishing is an `O(1)` handle clone
//!   sharing everything else with the live tree. No standby copy exists,
//!   memory is halved relative to the left-right scheme, and the writer
//!   **never waits on readers**: stale pins just keep old spine nodes alive
//!   until dropped.
//! * **Left-right mode** — the fallback for families without structural
//!   sharing. The shard owns two structurally identical copies built by the
//!   same [`IndexFactory`]; batches apply to the writer's standby copy, the
//!   swap publishes it, and the old published copy becomes the next standby
//!   once the last readers of two epochs ago drop their pins. The writer
//!   waits for those stale readers with a bounded spin that falls back to
//!   parking on a condvar which [`SnapshotRef::drop`] signals — no unbounded
//!   CPU burn when a pin is held across a long query.
//!
//! Blocking discipline:
//!
//! * readers never block on a publish — [`Shard::pin`] takes a read lock
//!   held only for one `Arc` clone, and the writer's write lock covers only
//!   the pointer swap (nanoseconds), never batch application;
//! * a persistent-mode writer never blocks on readers at all;
//! * a left-right writer blocks only on *stale* readers: a reader still
//!   pinning the snapshot from two publishes ago delays the next publish
//!   (never the current readers). Queries pin briefly, so this
//!   back-pressure only engages when publishes outpace the slowest query —
//!   and the wait parks instead of spinning.

use psi::registry::DynIndex;
use psi_geometry::{Coord, Point, Rect};
use std::ops::Deref;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

/// Live snapshot pins across every shard in the process (queries, retained
/// history views, held `SnapshotRef`s). One relaxed add per pin/unpin.
static OBS_PINNED: psi_obs::LazyGauge = psi_obs::LazyGauge::new(
    "psi_serve_pinned_readers",
    "snapshot pins currently held across all shards",
);

/// Builds one index copy over a point set. Persistent-capable families are
/// built once per shard; left-right families are built twice (published +
/// standby) so both copies share structure and tie-breaking behaviour.
pub type IndexFactory<T, const D: usize> =
    Arc<dyn Fn(&[Point<T, D>]) -> Box<dyn DynIndex<T, D>> + Send + Sync>;

/// An immutable, epoch-stamped view of one shard's index. Obtained from
/// [`Shard::pin`] (as a [`SnapshotRef`]); queries run against
/// [`Snapshot::index`] without any locking, and the contents never change
/// while the reference is held.
pub struct Snapshot<T: Coord, const D: usize> {
    epoch: u64,
    index: Box<dyn DynIndex<T, D>>,
}

impl<T: Coord, const D: usize> Snapshot<T, D> {
    /// The publish sequence number: 0 for the initial build, +1 per batch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The immutable index of this epoch.
    pub fn index(&self) -> &dyn DynIndex<T, D> {
        &*self.index
    }

    /// Number of stored points in this epoch.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if this epoch holds no points.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

/// The left-right writer's parking spot: stale pin drops signal `retired`
/// so a writer waiting to reclaim the standby wakes immediately instead of
/// spinning.
struct Reclaim {
    gate: Mutex<()>,
    retired: Condvar,
}

/// A pinned snapshot: derefs to [`Snapshot`], clones cheaply, and releases
/// the pin on drop. For left-right shards the drop additionally wakes a
/// writer parked waiting to reclaim the standby copy; persistent shards
/// skip that bookkeeping entirely (their writer never waits on readers).
pub struct SnapshotRef<T: Coord, const D: usize> {
    /// `Some` until dropped; optional only so `drop` can release the
    /// snapshot *before* signalling the writer (otherwise the writer could
    /// wake, re-check the refcount, and park again — a lost wakeup).
    snap: Option<Arc<Snapshot<T, D>>>,
    reclaim: Option<Arc<Reclaim>>,
}

impl<T: Coord, const D: usize> Deref for SnapshotRef<T, D> {
    type Target = Snapshot<T, D>;
    fn deref(&self) -> &Snapshot<T, D> {
        self.snap.as_ref().expect("live until drop")
    }
}

impl<T: Coord, const D: usize> Clone for SnapshotRef<T, D> {
    fn clone(&self) -> Self {
        OBS_PINNED.inc();
        SnapshotRef {
            snap: self.snap.clone(),
            reclaim: self.reclaim.clone(),
        }
    }
}

impl<T: Coord, const D: usize> Drop for SnapshotRef<T, D> {
    fn drop(&mut self) {
        OBS_PINNED.dec();
        let snap = self.snap.take();
        if let Some(reclaim) = &self.reclaim {
            drop(snap); // decrement before signalling, see field docs
            let _gate = reclaim.gate.lock().unwrap();
            reclaim.retired.notify_all();
        }
    }
}

/// One update batch: deletions, then insertions.
type Batch<T, const D: usize> = (Vec<Point<T, D>>, Vec<Point<T, D>>);

/// Writer-private state (see the module docs for the two modes).
enum WriterSide<T: Coord, const D: usize> {
    /// Persistent (path-copying) family: one live tree, snapshots share
    /// its structure. No standby, no lag batch, no reader wait.
    Persistent { live: Box<dyn DynIndex<T, D>> },
    /// Left-right fallback: two full copies, the classic scheme.
    LeftRight {
        /// The copy the next batch will be applied to. Shared with stale
        /// readers until they drop their pins; exclusively owned afterwards.
        standby: Arc<Snapshot<T, D>>,
        /// The batch already applied to the published copy but not yet to
        /// `standby` (applied lazily at the start of the next publish).
        lag: Option<Batch<T, D>>,
    },
}

/// One serving shard: an epoch-published index (see module docs).
pub struct Shard<T: Coord, const D: usize> {
    published: RwLock<Arc<Snapshot<T, D>>>,
    writer: Mutex<WriterSide<T, D>>,
    /// Shared with every left-right pin so drops can wake a parked writer.
    /// `None` for persistent shards — their pins carry no reclaim duty.
    reclaim: Option<Arc<Reclaim>>,
    region: Rect<T, D>,
}

impl<T: Coord, const D: usize> Shard<T, D> {
    /// Build a shard over `points`. `region` is the part of space this shard
    /// is responsible for (the router's stripe; a standalone shard passes
    /// the whole domain) — queries use it only for pruning, so it may be
    /// larger than the data's extent but must contain every point the shard
    /// will ever store.
    ///
    /// If the factory's index supports persistent snapshots
    /// ([`DynIndex::snapshot_dyn`]), the factory is called **once** and the
    /// shard runs in persistent mode; otherwise it is called twice (the
    /// left-right double buffer).
    pub fn new(region: Rect<T, D>, factory: &IndexFactory<T, D>, points: &[Point<T, D>]) -> Self {
        Self::with_epoch(region, factory, points, 0)
    }

    /// As [`Shard::new`], but the initial build publishes as `epoch` instead
    /// of 0. Crash recovery uses this to seed a rebuilt shard at the
    /// checkpoint watermark, so epoch numbers stay continuous across a
    /// restart.
    pub fn with_epoch(
        region: Rect<T, D>,
        factory: &IndexFactory<T, D>,
        points: &[Point<T, D>],
        epoch: u64,
    ) -> Self {
        let live = factory(points);
        match live.snapshot_dyn() {
            Some(shared) => Shard {
                published: RwLock::new(Arc::new(Snapshot {
                    epoch,
                    index: shared,
                })),
                writer: Mutex::new(WriterSide::Persistent { live }),
                reclaim: None,
                region,
            },
            None => Shard {
                published: RwLock::new(Arc::new(Snapshot { epoch, index: live })),
                writer: Mutex::new(WriterSide::LeftRight {
                    standby: Arc::new(Snapshot {
                        epoch,
                        index: factory(points),
                    }),
                    lag: None,
                }),
                reclaim: Some(Arc::new(Reclaim {
                    gate: Mutex::new(()),
                    retired: Condvar::new(),
                })),
                region,
            },
        }
    }

    /// The region this shard serves.
    pub fn region(&self) -> &Rect<T, D> {
        &self.region
    }

    /// `true` when this shard runs in persistent mode: one live tree,
    /// `O(1)` structural-sharing publishes, writer never waits on readers.
    pub fn is_persistent(&self) -> bool {
        self.reclaim.is_none()
    }

    /// Pin the current epoch. Wait-free apart from one briefly-held read
    /// lock (the writer's matching write lock covers only a pointer swap).
    pub fn pin(&self) -> SnapshotRef<T, D> {
        OBS_PINNED.inc();
        SnapshotRef {
            snap: Some(self.published.read().unwrap().clone()),
            reclaim: self.reclaim.clone(),
        }
    }

    /// The current published epoch number.
    pub fn epoch(&self) -> u64 {
        self.published.read().unwrap().epoch
    }

    /// Number of stored points in the current epoch.
    pub fn len(&self) -> usize {
        self.pin().len()
    }

    /// `true` if the current epoch holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Apply one batch (deletions first, then insertions — the `BatchDiff`
    /// contract) and publish it as a new epoch. Returns the new epoch
    /// number. Serialises writers via an internal lock. A persistent shard
    /// never waits on readers; a left-right shard blocks only on readers
    /// still pinning the snapshot from two publishes ago (bounded spin,
    /// then parking until a pin drop signals).
    pub fn publish(&self, delete: &[Point<T, D>], insert: &[Point<T, D>]) -> u64 {
        let mut w = self.writer.lock().unwrap();
        let epoch = self.published.read().unwrap().epoch + 1;
        match &mut *w {
            WriterSide::Persistent { live } => {
                // Copy-on-write: only the touched spine is duplicated; the
                // published snapshots keep sharing everything else.
                live.batch_delete(delete);
                live.batch_insert(insert);
                let fresh = Arc::new(Snapshot {
                    epoch,
                    index: live.snapshot_dyn().expect("persistent family"),
                });
                *self.published.write().unwrap() = fresh;
            }
            WriterSide::LeftRight { standby, lag } => {
                let lag_batch = lag.take();
                self.reclaim_standby(standby);
                let snap = Arc::get_mut(standby).expect("standby just became exclusive");

                // Catch up with the batch the standby missed, then apply
                // the new one.
                if let Some((del, ins)) = &lag_batch {
                    snap.index.batch_delete(del);
                    snap.index.batch_insert(ins);
                }
                snap.index.batch_delete(delete);
                snap.index.batch_insert(insert);
                snap.epoch = epoch;

                // Atomic publish: swap the pointer, keep the old copy as
                // standby.
                let fresh = standby.clone();
                let old = std::mem::replace(&mut *self.published.write().unwrap(), fresh);
                *standby = old;
                *lag = Some((delete.to_vec(), insert.to_vec()));
            }
        }
        epoch
    }

    /// Wait until `standby` is exclusively owned: readers of two epochs ago
    /// may still hold it. Briefly spins (the common case — queries pin for
    /// microseconds), then parks on the reclaim condvar that every pin drop
    /// signals. The timeout is belt-and-braces against a drop racing ahead
    /// of the park, not a correctness requirement.
    fn reclaim_standby(&self, standby: &mut Arc<Snapshot<T, D>>) {
        for _ in 0..64 {
            if Arc::get_mut(standby).is_some() {
                return;
            }
            std::hint::spin_loop();
        }
        for _ in 0..64 {
            if Arc::get_mut(standby).is_some() {
                return;
            }
            std::thread::yield_now();
        }
        let reclaim = self
            .reclaim
            .as_ref()
            .expect("left-right shards have a reclaim channel");
        let mut gate = reclaim.gate.lock().unwrap();
        while Arc::get_mut(standby).is_none() {
            let (g, _timeout) = reclaim
                .retired
                .wait_timeout(gate, Duration::from_millis(1))
                .unwrap();
            gate = g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi::registry::{self, BuildOptions};
    use psi_geometry::PointI;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn factory() -> IndexFactory<i64, 2> {
        named_factory("pkd")
    }

    fn named_factory(name: &'static str) -> IndexFactory<i64, 2> {
        Arc::new(move |pts: &[PointI<2>]| {
            registry::create::<2>(name, pts, &BuildOptions::default()).unwrap()
        })
    }

    fn pts(range: std::ops::Range<i64>) -> Vec<PointI<2>> {
        range.map(|i| Point::new([i, i * 2])).collect()
    }

    fn world() -> Rect<i64, 2> {
        Rect::from_corners(Point::new([i64::MIN; 2]), Point::new([i64::MAX; 2]))
    }

    #[test]
    fn publish_bumps_epochs_and_pins_are_stable() {
        // Both writer modes must satisfy the same epoch contract.
        for family in ["pkd", "cpam-h"] {
            let shard = Shard::new(world(), &named_factory(family), &pts(0..100));
            assert_eq!(shard.is_persistent(), family == "cpam-h");
            let e0 = shard.pin();
            assert_eq!(e0.epoch(), 0);
            assert_eq!(e0.len(), 100);

            let epoch = shard.publish(&pts(0..10), &pts(100..130));
            assert_eq!(epoch, 1);
            // The old pin still sees epoch 0 in full.
            assert_eq!(e0.len(), 100);
            assert_eq!(e0.index().range_count(&world()), 100);
            // A fresh pin sees the whole batch.
            let e1 = shard.pin();
            assert_eq!(e1.epoch(), 1);
            assert_eq!(e1.len(), 120);
            assert_eq!(e1.index().range_count(&world()), 120);
        }
    }

    #[test]
    fn lag_catchup_keeps_both_copies_identical() {
        let shard = Shard::new(world(), &factory(), &pts(0..50));
        // Several publishes: the standby is always one batch behind and
        // must catch up correctly (drop pins so the writer can reclaim).
        for round in 0..5i64 {
            let del = pts(round * 5..round * 5 + 5);
            let ins = pts(100 + round * 7..100 + round * 7 + 7);
            let epoch = shard.publish(&del, &ins);
            assert_eq!(epoch, round as u64 + 1);
            let pin = shard.pin();
            assert_eq!(pin.epoch(), round as u64 + 1);
            assert_eq!(
                pin.len(),
                50 - 5 * (round as usize + 1) + 7 * (round as usize + 1)
            );
        }
    }

    #[test]
    fn concurrent_readers_see_whole_epochs_only() {
        for family in ["pkd", "cpam-h"] {
            let shard = Arc::new(Shard::new(world(), &named_factory(family), &pts(0..200)));
            // Epoch e has exactly 200 + 10e points (insert-only batches), so
            // a torn read would show a size matching no epoch.
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let readers: Vec<_> = (0..3)
                .map(|_| {
                    let shard = Arc::clone(&shard);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let mut seen_epochs = Vec::new();
                        let mut last = 0u64;
                        // Check `stop` *before* the observation, so even a
                        // reader first scheduled after the writer finished
                        // still makes one (final-epoch) observation.
                        loop {
                            let finishing = stop.load(std::sync::atomic::Ordering::Acquire);
                            let pin = shard.pin();
                            let e = pin.epoch();
                            assert!(e >= last, "epochs must be monotonic per reader");
                            last = e;
                            assert_eq!(
                                pin.index().range_count(&world()) as u64,
                                200 + 10 * e,
                                "reader observed a torn epoch"
                            );
                            seen_epochs.push(e);
                            if finishing {
                                break;
                            }
                        }
                        seen_epochs
                    })
                })
                .collect();
            for round in 0..20u64 {
                let ins = pts(1_000 + (round as i64) * 10..1_000 + (round as i64) * 10 + 10);
                shard.publish(&[], &ins);
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
            for r in readers {
                let seen = r.join().unwrap();
                assert!(!seen.is_empty());
                // The observation made after `stop` was set sees the final
                // epoch.
                assert_eq!(*seen.last().unwrap(), 20);
            }
            assert_eq!(shard.epoch(), 20);
            assert_eq!(shard.len(), 400);
        }
    }

    #[test]
    fn persistent_shards_build_one_tree_left_right_builds_two() {
        let calls = Arc::new(AtomicUsize::new(0));
        let counting = |name: &'static str, calls: Arc<AtomicUsize>| -> IndexFactory<i64, 2> {
            Arc::new(move |pts: &[PointI<2>]| {
                calls.fetch_add(1, Ordering::Relaxed);
                registry::create::<2>(name, pts, &BuildOptions::default()).unwrap()
            })
        };

        let shard = Shard::new(
            world(),
            &counting("cpam-h", Arc::clone(&calls)),
            &pts(0..64),
        );
        assert!(shard.is_persistent());
        assert_eq!(calls.load(Ordering::Relaxed), 1, "persistent: one tree");

        calls.store(0, Ordering::Relaxed);
        let shard = Shard::new(world(), &counting("pkd", Arc::clone(&calls)), &pts(0..64));
        assert!(!shard.is_persistent());
        assert_eq!(
            calls.load(Ordering::Relaxed),
            2,
            "left-right: double buffer"
        );
    }

    #[test]
    fn persistent_publish_copies_a_spine_not_the_tree() {
        use psi_parutils::stats::counters;
        // A full copy of n points costs >= n/phi leaf nodes; a CoW publish
        // of a tiny batch touches only the spine. The NODES_COPIED counter
        // is process-global, so the measurement uses the scoped same-thread
        // capture: these 8-point batches sit far below the update paths'
        // parallel grain, so every copy happens on this thread and the
        // captured delta is exact — concurrent tests no longer interfere.
        let n = 60_000i64;
        let shard = Shard::new(world(), &named_factory("cpam-h"), &pts(0..n));
        assert!(shard.is_persistent());
        let pins: Vec<_> = (0..4).map(|_| shard.pin()).collect(); // live snapshots forcing CoW
        let ((), copied) = counters::NODES_COPIED.scoped(|| {
            for round in 0..10i64 {
                shard.publish(&[], &pts(n + round * 8..n + round * 8 + 8));
            }
        });
        // 10 publishes x 8 points over n=60k: spine copies only. A single
        // full copy would clone >= 1_500 leaves; stay well under that.
        assert!(
            copied < 1_200,
            "publish copied {copied} nodes - that smells like a full copy"
        );
        drop(pins);
    }

    #[test]
    fn persistent_writer_never_waits_on_readers() {
        // Hold pins of *every* epoch while publishing: a left-right writer
        // would deadlock here (the stale pins never drop); the persistent
        // writer sails through.
        let shard = Shard::new(world(), &named_factory("cpam-z"), &pts(0..100));
        assert!(shard.is_persistent());
        let mut pins = vec![shard.pin()];
        for round in 0..8i64 {
            shard.publish(&[], &pts(200 + round * 3..200 + round * 3 + 3));
            pins.push(shard.pin());
        }
        // Every historical epoch is still fully queryable.
        for (e, pin) in pins.iter().enumerate() {
            assert_eq!(pin.epoch(), e as u64);
            assert_eq!(pin.len(), 100 + 3 * e);
            assert_eq!(pin.index().range_count(&world()), 100 + 3 * e);
        }
    }

    #[test]
    fn left_right_writer_parks_and_wakes_on_pin_drop() {
        // A stale pin held longer than the spin budget forces the writer
        // onto the condvar path; dropping the pin must wake it promptly.
        let shard = Arc::new(Shard::new(world(), &factory(), &pts(0..100)));
        assert!(!shard.is_persistent());
        shard.publish(&[], &pts(100..110)); // epoch 1; standby = epoch-0 copy
        let stale = shard.pin(); // pins epoch 1 (next publish's standby)
        shard.publish(&[], &pts(110..120)); // epoch 2; standby = epoch-1 copy, pinned by `stale`

        let writer = {
            let shard = Arc::clone(&shard);
            std::thread::spawn(move || shard.publish(&[], &pts(120..130)))
        };
        // Give the writer time to exhaust its spin budget and park.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!writer.is_finished(), "writer must wait for the stale pin");
        drop(stale);
        assert_eq!(writer.join().unwrap(), 3);
        assert_eq!(shard.len(), 130);
    }
}
