//! Epoch-published index snapshots: one shard of the serving subsystem.
//!
//! A [`Shard`] owns two structurally identical copies of an index (built by
//! the same [`IndexFactory`] over the same points and fed the same batch
//! sequence, so they answer identically — ties included):
//!
//! * the **published** copy, wrapped in an immutable [`Snapshot`] behind an
//!   `Arc` that readers [`pin`](Shard::pin) and query freely, and
//! * the **standby** copy, private to the writer, which absorbs the next
//!   update batch.
//!
//! [`publish`](Shard::publish) applies a `.psi`-style batch (deletions, then
//! insertions) to the standby and atomically swaps it into the published
//! slot under a new epoch number. Readers never observe a half-applied
//! batch: a pinned `Arc<Snapshot>` is immutable for as long as it is held,
//! and the swap replaces the whole pointer. This is the classic left-right
//! scheme — the writer then keeps the *old* published copy as the next
//! standby and catches it up with the batch it missed (the `lag` batch)
//! at the start of the following publish, once the last readers of two
//! epochs ago have dropped their pins.
//!
//! Blocking discipline:
//!
//! * readers never block on a publish — [`Shard::pin`] takes a read lock
//!   held only for one `Arc` clone, and the writer's write lock covers only
//!   the pointer swap (nanoseconds), never batch application;
//! * the writer blocks only on *stale* readers: a reader still pinning the
//!   snapshot from two publishes ago delays the next publish (never the
//!   current readers). Queries pin briefly, so this back-pressure only
//!   engages when publishes outpace the slowest query.

use psi::registry::DynIndex;
use psi_geometry::{Coord, Point, Rect};
use std::sync::{Arc, Mutex, RwLock};

/// Builds one index copy over a point set; shards call it twice (published
/// + standby) so both copies share structure and tie-breaking behaviour.
pub type IndexFactory<T, const D: usize> =
    Arc<dyn Fn(&[Point<T, D>]) -> Box<dyn DynIndex<T, D>> + Send + Sync>;

/// An immutable, epoch-stamped view of one shard's index. Obtained from
/// [`Shard::pin`]; queries run against [`Snapshot::index`] without any
/// locking, and the contents never change while the `Arc` is held.
pub struct Snapshot<T: Coord, const D: usize> {
    epoch: u64,
    index: Box<dyn DynIndex<T, D>>,
}

impl<T: Coord, const D: usize> Snapshot<T, D> {
    /// The publish sequence number: 0 for the initial build, +1 per batch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The immutable index of this epoch.
    pub fn index(&self) -> &dyn DynIndex<T, D> {
        &*self.index
    }

    /// Number of stored points in this epoch.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if this epoch holds no points.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

/// Writer-private half of the left-right scheme.
/// One update batch: deletions, then insertions.
type Batch<T, const D: usize> = (Vec<Point<T, D>>, Vec<Point<T, D>>);

struct WriterSide<T: Coord, const D: usize> {
    /// The copy the next batch will be applied to. Shared with stale
    /// readers until they drop their pins; exclusively owned afterwards.
    standby: Arc<Snapshot<T, D>>,
    /// The batch already applied to the published copy but not yet to
    /// `standby` (applied lazily at the start of the next publish).
    lag: Option<Batch<T, D>>,
}

/// One serving shard: an epoch-published index pair (see module docs).
pub struct Shard<T: Coord, const D: usize> {
    published: RwLock<Arc<Snapshot<T, D>>>,
    writer: Mutex<WriterSide<T, D>>,
    region: Rect<T, D>,
}

impl<T: Coord, const D: usize> Shard<T, D> {
    /// Build a shard over `points`. `region` is the part of space this shard
    /// is responsible for (the router's stripe; a standalone shard passes
    /// the whole domain) — queries use it only for pruning, so it may be
    /// larger than the data's extent but must contain every point the shard
    /// will ever store.
    pub fn new(region: Rect<T, D>, factory: &IndexFactory<T, D>, points: &[Point<T, D>]) -> Self {
        Shard {
            published: RwLock::new(Arc::new(Snapshot {
                epoch: 0,
                index: factory(points),
            })),
            writer: Mutex::new(WriterSide {
                standby: Arc::new(Snapshot {
                    epoch: 0,
                    index: factory(points),
                }),
                lag: None,
            }),
            region,
        }
    }

    /// The region this shard serves.
    pub fn region(&self) -> &Rect<T, D> {
        &self.region
    }

    /// Pin the current epoch. Wait-free apart from one briefly-held read
    /// lock (the writer's matching write lock covers only a pointer swap).
    pub fn pin(&self) -> Arc<Snapshot<T, D>> {
        self.published.read().unwrap().clone()
    }

    /// The current published epoch number.
    pub fn epoch(&self) -> u64 {
        self.published.read().unwrap().epoch
    }

    /// Number of stored points in the current epoch.
    pub fn len(&self) -> usize {
        self.pin().len()
    }

    /// `true` if the current epoch holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Apply one batch (deletions first, then insertions — the `BatchDiff`
    /// contract) and publish it as a new epoch. Returns the new epoch
    /// number. Serialises writers via an internal lock; blocks only on
    /// readers still pinning the snapshot from two publishes ago.
    pub fn publish(&self, delete: &[Point<T, D>], insert: &[Point<T, D>]) -> u64 {
        let mut w = self.writer.lock().unwrap();
        let lag = w.lag.take();

        // Reclaim the standby: readers of two epochs ago may still hold it.
        let mut spins = 0u32;
        while Arc::get_mut(&mut w.standby).is_none() {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else if spins < 1_024 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
        let snap = Arc::get_mut(&mut w.standby).expect("standby just became exclusive");

        // Catch up with the batch the standby missed, then apply the new one.
        if let Some((del, ins)) = &lag {
            snap.index.batch_delete(del);
            snap.index.batch_insert(ins);
        }
        snap.index.batch_delete(delete);
        snap.index.batch_insert(insert);
        let epoch = self.published.read().unwrap().epoch + 1;
        snap.epoch = epoch;

        // Atomic publish: swap the pointer, keep the old copy as standby.
        let fresh = w.standby.clone();
        let old = std::mem::replace(&mut *self.published.write().unwrap(), fresh);
        w.standby = old;
        w.lag = Some((delete.to_vec(), insert.to_vec()));
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi::registry::{self, BuildOptions};
    use psi_geometry::PointI;

    fn factory() -> IndexFactory<i64, 2> {
        Arc::new(|pts: &[PointI<2>]| {
            registry::create::<2>("pkd", pts, &BuildOptions::default()).unwrap()
        })
    }

    fn pts(range: std::ops::Range<i64>) -> Vec<PointI<2>> {
        range.map(|i| Point::new([i, i * 2])).collect()
    }

    fn world() -> Rect<i64, 2> {
        Rect::from_corners(Point::new([i64::MIN; 2]), Point::new([i64::MAX; 2]))
    }

    #[test]
    fn publish_bumps_epochs_and_pins_are_stable() {
        let shard = Shard::new(world(), &factory(), &pts(0..100));
        let e0 = shard.pin();
        assert_eq!(e0.epoch(), 0);
        assert_eq!(e0.len(), 100);

        let epoch = shard.publish(&pts(0..10), &pts(100..130));
        assert_eq!(epoch, 1);
        // The old pin still sees epoch 0 in full.
        assert_eq!(e0.len(), 100);
        assert_eq!(e0.index().range_count(&world()), 100);
        // A fresh pin sees the whole batch.
        let e1 = shard.pin();
        assert_eq!(e1.epoch(), 1);
        assert_eq!(e1.len(), 120);
        assert_eq!(e1.index().range_count(&world()), 120);
    }

    #[test]
    fn lag_catchup_keeps_both_copies_identical() {
        let shard = Shard::new(world(), &factory(), &pts(0..50));
        // Several publishes: the standby is always one batch behind and
        // must catch up correctly (drop pins so the writer can reclaim).
        for round in 0..5i64 {
            let del = pts(round * 5..round * 5 + 5);
            let ins = pts(100 + round * 7..100 + round * 7 + 7);
            let epoch = shard.publish(&del, &ins);
            assert_eq!(epoch, round as u64 + 1);
            let pin = shard.pin();
            assert_eq!(pin.epoch(), round as u64 + 1);
            assert_eq!(
                pin.len(),
                50 - 5 * (round as usize + 1) + 7 * (round as usize + 1)
            );
        }
    }

    #[test]
    fn concurrent_readers_see_whole_epochs_only() {
        let shard = Arc::new(Shard::new(world(), &factory(), &pts(0..200)));
        // Epoch e has exactly 200 + 10e points (insert-only batches), so a
        // torn read would show a size matching no epoch.
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let shard = Arc::clone(&shard);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen_epochs = Vec::new();
                    let mut last = 0u64;
                    // Check `stop` *before* the observation, so even a
                    // reader first scheduled after the writer finished
                    // still makes one (final-epoch) observation.
                    loop {
                        let finishing = stop.load(std::sync::atomic::Ordering::Acquire);
                        let pin = shard.pin();
                        let e = pin.epoch();
                        assert!(e >= last, "epochs must be monotonic per reader");
                        last = e;
                        assert_eq!(
                            pin.index().range_count(&world()) as u64,
                            200 + 10 * e,
                            "reader observed a torn epoch"
                        );
                        seen_epochs.push(e);
                        if finishing {
                            break;
                        }
                    }
                    seen_epochs
                })
            })
            .collect();
        for round in 0..20u64 {
            let ins = pts(1_000 + (round as i64) * 10..1_000 + (round as i64) * 10 + 10);
            shard.publish(&[], &ins);
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        for r in readers {
            let seen = r.join().unwrap();
            assert!(!seen.is_empty());
            // The observation made after `stop` was set sees the final epoch.
            assert_eq!(*seen.last().unwrap(), 20);
        }
        assert_eq!(shard.epoch(), 20);
        assert_eq!(shard.len(), 400);
    }
}
