//! Quickstart: build spatial indexes through the unified v2 API — fluent
//! builder, generic trait, runtime registry — query them, and keep them up to
//! date with batch updates.
//!
//! Run with: `cargo run --release --example quickstart`

use psi::registry::{self, BuildOptions};
use psi::{POrthTree2, Point, PsiBuilder, Rect, SpacHTree, SpatialIndex};
use psi_workloads as workloads;

fn main() {
    // 1. Some spatial data: one million-ish points would also work, but the
    //    example keeps it small so it runs instantly.
    let n = 100_000;
    let max_coord = 1_000_000_000;
    let data = workloads::uniform::<2>(n, max_coord, 1);
    let universe = workloads::universe::<2>(max_coord);

    // 2. Build two of Ψ-Lib's indexes through the same fluent builder: the
    //    P-Orth tree (fastest queries on uniform data) and the SPaC-H tree
    //    (fastest batch updates). Every paper knob hangs off the chain.
    let mut porth = PsiBuilder::<POrthTree2>::new()
        .universe(universe)
        .build(&data);
    let mut spac = PsiBuilder::<SpacHTree<2>>::new()
        .universe(universe)
        .leaf_size(40)
        .build(&data);
    println!(
        "built P-Orth ({} points) and SPaC-H ({} points)",
        porth.len(),
        spac.len()
    );

    // 3. k-nearest-neighbour query.
    let q = Point::new([500_000_000, 500_000_000]);
    let nn = porth.knn(&q, 5);
    println!("5 nearest neighbours of {:?}:", q.coords);
    for p in &nn {
        println!("  {:?}  (squared distance {})", p.coords, q.dist_sq(p));
    }
    assert_eq!(nn, spac.knn(&q, 5), "both indexes agree");

    // 4. Range queries: count and list the points in an axis-aligned window.
    let window = Rect::from_corners(
        Point::new([250_000_000, 250_000_000]),
        Point::new([260_000_000, 260_000_000]),
    );
    println!(
        "points in window: {} (P-Orth) = {} (SPaC-H)",
        porth.range_count(&window),
        spac.range_count(&window)
    );

    // 5. The data moves: apply a batch deletion of stale points and a batch
    //    insertion of fresh ones as one logical diff.
    let stale = &data[..10_000];
    let fresh = workloads::uniform::<2>(10_000, max_coord, 2);
    porth.batch_diff(stale, &fresh);
    spac.batch_diff(stale, &fresh);
    println!(
        "after one update round both indexes hold {} points",
        porth.len()
    );
    assert_eq!(porth.len(), spac.len());

    // 6. Runtime selection: the registry builds any family from a string —
    //    the path CLI drivers and config files use.
    let opts = BuildOptions::with_universe(universe);
    let chosen = std::env::args().nth(1).unwrap_or_else(|| "zd".to_string());
    let dynamic = registry::create::<2>(&chosen, &data, &opts).unwrap_or_else(|e| panic!("{e}"));
    println!(
        "registry built {:?} -> {} with {} points; 3-NN = {:?}",
        chosen,
        dynamic.name(),
        dynamic.len(),
        dynamic
            .knn(&q, 3)
            .iter()
            .map(|p| p.coords)
            .collect::<Vec<_>>()
    );

    // 7. Float coordinates run through the identical trait (P-Orth and Pkd
    //    have no integer-domain restriction).
    let float_pts: Vec<Point<f64, 2>> = data[..1_000]
        .iter()
        .map(|p| Point::new([p.coords[0] as f64 * 1e-9, p.coords[1] as f64 * 1e-9]))
        .collect();
    let float_tree = psi::POrthTreeF::<2>::build_with(&float_pts, None, Default::default());
    println!(
        "f64 P-Orth over the unit square: {} points, 3-NN of the centre: {:?}",
        float_tree.len(),
        float_tree
            .knn(&Point::new([0.5, 0.5]), 3)
            .iter()
            .map(|p| p.coords)
            .collect::<Vec<_>>()
    );
}
