//! Quickstart: build a spatial index, query it, and keep it up to date with
//! batch insertions and deletions.
//!
//! Run with: `cargo run --release --example quickstart`

use psi::{POrthTree2, Point, Rect, SpacHTree, SpatialIndex};
use psi_workloads as workloads;

fn main() {
    // 1. Some spatial data: one million-ish points would also work, but the
    //    example keeps it small so it runs instantly.
    let n = 100_000;
    let max_coord = 1_000_000_000;
    let data = workloads::uniform::<2>(n, max_coord, 1);
    let universe = workloads::universe::<2>(max_coord);

    // 2. Build two of Ψ-Lib's indexes through the shared `SpatialIndex` trait:
    //    the P-Orth tree (fastest queries on uniform data) and the SPaC-H tree
    //    (fastest batch updates).
    let mut porth = <POrthTree2 as SpatialIndex<2>>::build(&data, &universe);
    let mut spac = <SpacHTree<2> as SpatialIndex<2>>::build(&data, &universe);
    println!("built P-Orth ({} points) and SPaC-H ({} points)", porth.len(), spac.len());

    // 3. k-nearest-neighbour query.
    let q = Point::new([500_000_000, 500_000_000]);
    let nn = porth.knn(&q, 5);
    println!("5 nearest neighbours of {:?}:", q.coords);
    for p in &nn {
        println!("  {:?}  (squared distance {})", p.coords, q.dist_sq(p));
    }
    assert_eq!(nn, spac.knn(&q, 5), "both indexes agree");

    // 4. Range queries: count and list the points in an axis-aligned window.
    let window = Rect::from_corners(
        Point::new([250_000_000, 250_000_000]),
        Point::new([260_000_000, 260_000_000]),
    );
    println!(
        "points in window: {} (P-Orth) = {} (SPaC-H)",
        porth.range_count(&window),
        spac.range_count(&window)
    );

    // 5. The data moves: apply a batch deletion of stale points and a batch
    //    insertion of fresh ones. Batches are processed in parallel internally.
    let stale = &data[..10_000];
    let fresh = workloads::uniform::<2>(10_000, max_coord, 2);
    porth.batch_delete(stale);
    porth.batch_insert(&fresh);
    spac.batch_delete(stale);
    spac.batch_insert(&fresh);
    println!(
        "after one update round both indexes hold {} points",
        porth.len()
    );
    assert_eq!(porth.len(), spac.len());

    // 6. Queries keep working on the updated indexes.
    let nn = spac.knn(&q, 3);
    println!("3-NN after the update: {:?}", nn.iter().map(|p| p.coords).collect::<Vec<_>>());
}
