//! Dynamic 3-D scene maintenance — the "moving objects in a game" scenario
//! from the paper's introduction: thousands of objects move every frame, the
//! index must absorb the movement as batch updates with low latency, and
//! collision detection issues k-NN queries against the fresh index.
//!
//! Run with: `cargo run --release --example game_collision`

use psi::{Point, PointI, SpacHTree, SpatialIndex};
use psi_workloads as workloads;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::time::Instant;

const WORLD: i64 = 1_000_000; // 3-D world with 10^6 units per axis
const OBJECTS: usize = 50_000;
const MOVERS_PER_FRAME: usize = 5_000;
const FRAMES: usize = 20;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let universe = workloads::universe::<3>(WORLD);

    // Initial object positions: clustered, as game entities tend to be.
    let mut positions = workloads::cosmo_like(OBJECTS, WORLD, 3);
    let mut index = <SpacHTree<3> as SpatialIndex<i64, 3>>::build(&positions, &universe);
    println!(
        "world initialised: {} objects, index height-ish {} levels",
        index.len(),
        (OBJECTS as f64).log2() as usize
    );

    let mut total_update = 0.0;
    let mut total_query = 0.0;
    let mut seen = std::collections::HashSet::with_capacity(MOVERS_PER_FRAME);
    for frame in 0..FRAMES {
        // A subset of objects moves this frame. Sampling is with
        // replacement, so the same object can be drawn twice — keep only its
        // first draw: moving one object twice in a single batch would delete
        // its old position twice (the second delete can hit another object
        // sharing the coordinate, or miss) and insert two new positions,
        // breaking the object count the assertion below guards.
        seen.clear();
        let mover_ids: Vec<usize> = (0..MOVERS_PER_FRAME)
            .map(|_| rng.gen_range(0..positions.len()))
            .filter(|id| seen.insert(*id))
            .collect();
        let old_positions: Vec<PointI<3>> = mover_ids.iter().map(|&i| positions[i]).collect();
        let new_positions: Vec<PointI<3>> = old_positions
            .iter()
            .map(|p| {
                let mut c = p.coords;
                for x in c.iter_mut() {
                    *x = (*x + rng.gen_range(-500i64..=500)).clamp(0, WORLD);
                }
                Point::new(c)
            })
            .collect();

        // Reflect the movement in the index: delete old positions, insert new.
        let t = Instant::now();
        index.batch_delete(&old_positions);
        index.batch_insert(&new_positions);
        total_update += t.elapsed().as_secs_f64();
        for (slot, &id) in mover_ids.iter().enumerate() {
            positions[id] = new_positions[slot];
        }
        assert_eq!(index.len(), OBJECTS, "object count must stay constant");

        // Collision candidates: the 8 nearest neighbours of every moved object.
        let t = Instant::now();
        let near_pairs: usize = new_positions
            .iter()
            .map(|p| {
                index
                    .knn(p, 8)
                    .iter()
                    .filter(|o| p.dist_sq(o) < 100 * 100)
                    .count()
            })
            .sum();
        total_query += t.elapsed().as_secs_f64();

        if frame % 5 == 0 {
            println!(
                "frame {frame:>3}: {} objects moved, {near_pairs} close-contact candidates",
                mover_ids.len()
            );
        }
    }
    println!(
        "\n{FRAMES} frames: {:.1} ms/frame updating the index, {:.1} ms/frame on collision queries",
        1e3 * total_update / FRAMES as f64,
        1e3 * total_query / FRAMES as f64
    );
}
