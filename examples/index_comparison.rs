//! Side-by-side comparison of every index in Ψ-Lib-rs on one dynamic
//! workload — a miniature of the paper's Fig. 3 that runs in seconds and
//! prints a compact table.
//!
//! Run with: `cargo run --release --example index_comparison`
//! Change the distribution by passing `uniform`, `sweepline` or `varden`.

use psi::driver::{incremental_insert, QuerySet};
use psi::{
    CpamHTree, CpamZTree, PkdTree, POrthTree2, PointI, RTree, SpacHTree, SpacZTree, SpatialIndex,
    ZdTree,
};
use psi_workloads::{self as workloads, Distribution};
use std::time::Instant;

const N: usize = 100_000;
const MAX_COORD: i64 = 1_000_000_000;

fn run<I: SpatialIndex<2>>(name: &str, data: &[PointI<2>], queries: &QuerySet<2>) {
    let universe = workloads::universe::<2>(MAX_COORD);

    let t = Instant::now();
    let index = I::build(data, &universe);
    let build = t.elapsed();
    drop(index);

    // Dynamic build: 1% batches.
    let (res, index) = incremental_insert::<I, 2>(data, N / 100, &universe, None);
    let q = queries.run(&index);

    println!(
        "{:<10} build {:>8.3}s | inc-insert {:>8.3}s | 10NN {:>8.3}s | range {:>8.3}s",
        name,
        build.as_secs_f64(),
        res.update_time.as_secs_f64(),
        q.knn_ind.as_secs_f64(),
        q.range_list.as_secs_f64(),
    );
}

fn main() {
    let dist = match std::env::args().nth(1).as_deref() {
        Some("sweepline") => Distribution::Sweepline,
        Some("varden") => Distribution::Varden,
        _ => Distribution::Uniform,
    };
    println!("distribution: {} (n = {})", dist.name(), N);
    let data = dist.generate::<2>(N, MAX_COORD, 42);
    let queries = QuerySet {
        knn_ind: workloads::ind_queries(&data, 2_000, 7),
        knn_ood: vec![],
        k: 10,
        ranges: workloads::range_queries(&data, MAX_COORD, 1_000, 200, 7),
    };

    run::<POrthTree2>("P-Orth", &data, &queries);
    run::<ZdTree<2>>("Zd-Tree", &data, &queries);
    run::<SpacHTree<2>>("SPaC-H", &data, &queries);
    run::<SpacZTree<2>>("SPaC-Z", &data, &queries);
    run::<CpamHTree<2>>("CPAM-H", &data, &queries);
    run::<CpamZTree<2>>("CPAM-Z", &data, &queries);
    run::<PkdTree<2>>("Pkd-Tree", &data, &queries);
    run::<RTree<2>>("Boost-R", &data, &queries);
}
