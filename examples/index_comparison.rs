//! Side-by-side comparison of every index in Ψ-Lib-rs on one dynamic
//! workload — a miniature of the paper's Fig. 3 that runs in seconds and
//! prints a compact table.
//!
//! Indexes are selected *at runtime* through `psi::registry`, so the set under
//! test is just a list of names — the same mechanism a CLI driver or config
//! file would use.
//!
//! Run with: `cargo run --release --example index_comparison`
//! Change the distribution by passing `uniform`, `sweepline` or `varden`;
//! pass index names after the distribution to restrict the table
//! (e.g. `varden p-orth spac-h`).

use psi::registry::{self, BuildOptions};
use psi::{KnnHeap, PointI, RectI};
use psi_workloads::{self as workloads, Distribution};
use std::time::{Duration, Instant};

const N: usize = 100_000;
const MAX_COORD: i64 = 1_000_000_000;

struct Row {
    build: Duration,
    inc_insert: Duration,
    knn: Duration,
    range: Duration,
}

fn run(
    name: &str,
    data: &[PointI<2>],
    knn_queries: &[PointI<2>],
    ranges: &[RectI<2>],
) -> Result<Row, registry::RegistryError> {
    let opts = BuildOptions::with_universe(workloads::universe::<2>(MAX_COORD));

    let t = Instant::now();
    let index = registry::create::<2>(name, data, &opts)?;
    let build = t.elapsed();
    drop(index);

    // Dynamic build: 1% batches through the object-safe façade.
    let batch = N / 100;
    let t = Instant::now();
    let mut index = registry::create::<2>(name, &data[..batch], &opts)?;
    let mut applied = batch;
    while applied < data.len() {
        let next = (applied + batch).min(data.len());
        index.batch_insert(&data[applied..next]);
        applied = next;
    }
    let inc_insert = t.elapsed();

    // Queries through the allocation-free primitives, one reused heap.
    let mut heap = KnnHeap::new(10);
    let t = Instant::now();
    let mut sink = 0usize;
    for q in knn_queries {
        index.knn_into(q, 10, &mut heap);
        sink += heap.len();
    }
    let knn = t.elapsed();

    let t = Instant::now();
    for r in ranges {
        index.range_visit(r, &mut |_| sink += 1);
    }
    let range = t.elapsed();
    std::hint::black_box(sink);

    Ok(Row {
        build,
        inc_insert,
        knn,
        range,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dist = match args.first().map(String::as_str) {
        Some("sweepline") => Distribution::Sweepline,
        Some("varden") => Distribution::Varden,
        _ => Distribution::Uniform,
    };
    let selected: Vec<&str> = if args.len() > 1 {
        args[1..].iter().map(String::as_str).collect()
    } else {
        registry::names()
            .iter()
            .copied()
            .filter(|n| *n != "brute-force")
            .collect()
    };

    println!("distribution: {} (n = {})", dist.name(), N);
    let data = dist.generate::<2>(N, MAX_COORD, 42);
    let knn_queries = workloads::ind_queries(&data, 2_000, 7);
    let ranges = workloads::range_queries(&data, MAX_COORD, 1_000, 200, 7);

    for name in selected {
        match run(name, &data, &knn_queries, &ranges) {
            Ok(row) => println!(
                "{:<12} build {:>8.3}s | inc-insert {:>8.3}s | 10NN {:>8.3}s | range {:>8.3}s",
                name,
                row.build.as_secs_f64(),
                row.inc_insert.as_secs_f64(),
                row.knn.as_secs_f64(),
                row.range.as_secs_f64(),
            ),
            Err(e) => println!("{name:<12} skipped: {e}"),
        }
    }
}
