//! GIS sensor-stream ingestion — the paper's second motivating scenario:
//! high-volume position reports arrive in batches and must be folded into the
//! index with high throughput, while analysts run window (range) queries over
//! the continuously changing map.
//!
//! Two indexes process the same stream so their trade-off is visible: the
//! P-Orth tree (best query latency) and the SPaC-H tree (best ingest
//! throughput). A brute-force check validates one window count at the end.
//!
//! Run with: `cargo run --release --example gis_stream`

use psi::{BruteForce, POrthTree2, Point, Rect, SpacHTree, SpatialIndex};
use psi_workloads as workloads;
use std::time::Instant;

const MAX_COORD: i64 = 1_000_000_000;
const INITIAL: usize = 200_000;
const BATCHES: usize = 50;
const BATCH_SIZE: usize = 4_000;

fn main() {
    let universe = workloads::universe::<2>(MAX_COORD);
    // The base map: road-network-like points.
    let base = workloads::osm_like(INITIAL, MAX_COORD, 11);

    let mut porth = <POrthTree2 as SpatialIndex<i64, 2>>::build(&base, &universe);
    let mut spac = <SpacHTree<2> as SpatialIndex<i64, 2>>::build(&base, &universe);
    let mut oracle = <BruteForce<i64, 2> as SpatialIndex<i64, 2>>::build(&base, &universe);
    println!("base map loaded: {} points", porth.len());

    // Analyst viewports: a handful of fixed windows queried after every batch.
    let viewports: Vec<Rect<i64, 2>> = (0..5)
        .map(|i| {
            let cx = (i as i64 + 1) * MAX_COORD / 6;
            Rect::from_corners(
                Point::new([cx - MAX_COORD / 50, cx - MAX_COORD / 50]),
                Point::new([cx + MAX_COORD / 50, cx + MAX_COORD / 50]),
            )
        })
        .collect();

    let mut porth_ingest = 0.0;
    let mut spac_ingest = 0.0;
    for b in 0..BATCHES {
        // New sensor readings cluster along roads too.
        let batch = workloads::osm_like(BATCH_SIZE, MAX_COORD, 1000 + b as u64);

        let t = Instant::now();
        porth.batch_insert(&batch);
        porth_ingest += t.elapsed().as_secs_f64();

        let t = Instant::now();
        spac.batch_insert(&batch);
        spac_ingest += t.elapsed().as_secs_f64();

        oracle.batch_insert(&batch);

        if b % 10 == 9 {
            let counts: Vec<usize> = viewports.iter().map(|v| porth.range_count(v)).collect();
            println!(
                "after batch {:>3}: {} points indexed, viewport counts {:?}",
                b + 1,
                porth.len(),
                counts
            );
        }
    }

    // The two parallel indexes and the brute-force oracle agree exactly.
    for v in &viewports {
        let expected = oracle.range_count(v);
        assert_eq!(porth.range_count(v), expected);
        assert_eq!(spac.range_count(v), expected);
    }

    let ingested = (BATCHES * BATCH_SIZE) as f64;
    println!(
        "\ningest throughput over {} batches: P-Orth {:.2} Mpts/s, SPaC-H {:.2} Mpts/s",
        BATCHES,
        ingested / porth_ingest / 1e6,
        ingested / spac_ingest / 1e6
    );
    println!(
        "final index size: {} points (all three structures agree)",
        spac.len()
    );
}
